"""X-aware behavioral memory with copy-on-write snapshots.

The paper keeps program/data memory behavioral (the SRAM macro is not part
of the gate-level power model) but fully participates in X propagation:
memory cells not loaded from the binary start as X, loads from unknown
addresses return X, and writes under an unknown write-enable conservatively
merge old and new contents.

Words are 16-bit, addressed by *word* address.  Each word carries an
``xmask``: bit i set means bit i of the word is unknown.

Snapshots are **copy-on-write**: :meth:`TernaryMemory.fork` shares the
``words``/``xmask`` arrays between parent and child and marks both dirty;
the first write on either side materializes a private copy.  The execution
explorers snapshot the machine every cycle but write memory only on store
cycles, so forking makes the per-cycle snapshot O(1) instead of O(memory).
The state digest used for path memoization is cached on the same dirty
flag, so repeated forks of an unchanged memory hash it once.
"""

from __future__ import annotations

import hashlib

import numpy as np

MASK16 = 0xFFFF


class MemoryXAddressError(Exception):
    """A store was attempted to a fully unknown address.

    Soundly modeling it would require assuming *every* memory cell may have
    changed, which destroys the analysis; the paper's benchmarks (and ours)
    never store through an unconstrained pointer.
    """


class TernaryMemory:
    """Word-addressed 16-bit memory where each bit may be 0, 1, or X."""

    def __init__(self, n_words: int = 1 << 15):
        self.n_words = n_words
        self.words = np.zeros(n_words, dtype=np.uint16)
        self.xmask = np.full(n_words, MASK16, dtype=np.uint16)
        #: copy-on-write: True while ``words``/``xmask`` may be shared with
        #: another TernaryMemory produced by :meth:`fork`.
        self._shared = False
        #: memoized :meth:`digest`, invalidated by any write.
        self._digest: bytes | None = None

    def fork(self) -> "TernaryMemory":
        """A copy-on-write clone, observationally a deep copy.

        Parent and clone share the backing arrays until either side
        writes; the writer then materializes a private copy, leaving the
        other side untouched.  Forking is O(1).
        """
        clone = TernaryMemory.__new__(TernaryMemory)
        clone.n_words = self.n_words
        clone.words = self.words
        clone.xmask = self.xmask
        clone._shared = True
        clone._digest = self._digest
        self._shared = True
        return clone

    def copy(self) -> "TernaryMemory":
        """Alias of :meth:`fork` — an observational deep copy."""
        return self.fork()

    def _own(self) -> None:
        """Write barrier: materialize shared arrays, drop the digest."""
        if self._shared:
            self.words = self.words.copy()
            self.xmask = self.xmask.copy()
            self._shared = False
        self._digest = None

    def digest(self) -> bytes:
        """Stable fingerprint used for execution-tree state memoization."""
        if self._digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(self.words.tobytes())
            h.update(self.xmask.tobytes())
            self._digest = h.digest()
        return self._digest

    # ------------------------------------------------------------------
    # Known-address accesses
    # ------------------------------------------------------------------
    def load_word(self, word_addr: int, value: int, xmask: int = 0) -> None:
        """Initialize one word (used by the binary loader and input specs)."""
        self._own()
        self.words[word_addr] = value & MASK16
        self.xmask[word_addr] = xmask & MASK16

    def read(self, word_addr: int | None) -> tuple[int, int]:
        """Return ``(value, xmask)``; an unknown address reads as all-X."""
        if word_addr is None:
            return 0, MASK16
        return int(self.words[word_addr]), int(self.xmask[word_addr])

    def write(self, word_addr: int | None, value: int, xmask: int = 0) -> None:
        if word_addr is None:
            raise MemoryXAddressError(
                "store to unknown (X) address; constrain the pointer or use "
                "an input-independent address"
            )
        self._own()
        self.words[word_addr] = value & MASK16 & ~xmask
        self.xmask[word_addr] = xmask & MASK16

    def write_uncertain(self, word_addr: int | None, value: int, xmask: int = 0) -> None:
        """Write under an X write-enable: the store may or may not happen.

        Every bit where the old and new contents could differ becomes X.
        """
        if word_addr is None:
            raise MemoryXAddressError(
                "conditional store to unknown (X) address cannot be bounded"
            )
        self._own()
        old_value = int(self.words[word_addr])
        old_x = int(self.xmask[word_addr])
        new_value = value & MASK16
        new_x = xmask & MASK16
        differs = (old_value ^ new_value) | old_x | new_x
        self.xmask[word_addr] = differs & MASK16
        self.words[word_addr] = old_value & ~differs & MASK16

    # ------------------------------------------------------------------
    # Convenience for loaders and tests
    # ------------------------------------------------------------------
    def load_program(self, words_by_addr: dict[int, int]) -> None:
        """Load concrete words keyed by *byte* address (must be even)."""
        for byte_addr, value in words_by_addr.items():
            if byte_addr % 2:
                raise ValueError(f"misaligned program word at {byte_addr:#x}")
            self.load_word(byte_addr >> 1, value, 0)

    def read_byte_addr(self, byte_addr: int) -> tuple[int, int]:
        return self.read(byte_addr >> 1)

    def known_word(self, byte_addr: int) -> int:
        """Read a word that must be fully known (testing helper)."""
        value, xmask = self.read_byte_addr(byte_addr)
        if xmask:
            raise ValueError(f"word at {byte_addr:#x} has unknown bits {xmask:#06x}")
        return value
