"""Vectorized levelized evaluation of a netlist under 3-valued logic.

The evaluator pre-groups combinational gates by (level, kind) so that one
simulation cycle is a short sequence of numpy fancy-indexing operations
instead of a Python loop over gates.  It also implements the paper's gate
*activity* rule:

    "A gate is considered active if its value changes or if it has an
     unknown value (X) and is driven by an active gate; otherwise idle."

Every method is dimension-agnostic: it accepts either a single value
vector of shape ``(n_nets,)`` or a batch matrix of shape ``(B, n_nets)``
whose rows are independent machine states.  Batched evaluation settles B
pending execution paths in lock-step — one fancy-indexing operation per
level-group covers all paths — which is what amortizes the per-cycle numpy
dispatch cost across the execution tree (see :mod:`repro.sim.batch`).
"""

from __future__ import annotations

import numpy as np

from repro.logic import X
from repro.logic.tables import BINARY_TABLES, BUF_TABLE, MUX_TABLE, NOT_TABLE
from repro.netlist.core import Netlist


class _LevelGroup:
    """All gates of one kind within one level, as index arrays."""

    def __init__(self, kind: str, gates: list):
        self.kind = kind
        self.out = np.array([g.index for g in gates], dtype=np.int64)
        arity = len(gates[0].inputs)
        self.ins = [
            np.array([g.inputs[pos] for g in gates], dtype=np.int64)
            for pos in range(arity)
        ]


class LevelizedEvaluator:
    """Evaluates combinational logic and activity level by level."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.n_nets = netlist.n_nets
        levels = netlist.levelize()
        self.depth = len(levels)
        self._groups: list[list[_LevelGroup]] = []
        for level_gates in levels:
            by_kind: dict[str, list] = {}
            for index in level_gates:
                gate = netlist.gates[index]
                by_kind.setdefault(gate.kind, []).append(gate)
            self._groups.append(
                [_LevelGroup(kind, gates) for kind, gates in sorted(by_kind.items())]
            )

        self.dff_out = np.array(netlist.dff_indices(), dtype=np.int64)
        self.dff_d = np.array(
            [netlist.gates[i].inputs[0] for i in self.dff_out], dtype=np.int64
        )
        self.dff_reset = np.array(
            [netlist.gates[i].reset_value for i in self.dff_out], dtype=np.uint8
        )
        self.const0_nets = np.array(
            [g.index for g in netlist.gates if g.kind == "CONST0"], dtype=np.int64
        )
        self.const1_nets = np.array(
            [g.index for g in netlist.gates if g.kind == "CONST1"], dtype=np.int64
        )
        self.input_nets = np.array(
            [g.index for g in netlist.gates if g.kind == "INPUT"], dtype=np.int64
        )
        #: widest (level, kind) group — sizes the activity scratch buffers
        self._max_group = max(
            (group.out.size for level in self._groups for group in level),
            default=0,
        )
        #: per-leading-shape reusable scratch for :meth:`compute_activity`
        self._act_scratch: dict[tuple[int, ...], tuple] = {}

    def fresh_values(self, batch: int | None = None) -> np.ndarray:
        """All-X value state with constants tied (the paper's initial state).

        With ``batch=None`` the shape is ``(n_nets,)``; otherwise
        ``(batch, n_nets)`` with independent rows.
        """
        shape = self.n_nets if batch is None else (batch, self.n_nets)
        values = np.full(shape, X, dtype=np.uint8)
        values[..., self.const0_nets] = 0
        values[..., self.const1_nets] = 1
        return values

    def eval_comb(self, values: np.ndarray) -> None:
        """Settle all combinational gates in place, level by level.

        *values* may be one vector or a ``(B, n_nets)`` batch; each row is
        settled independently (fancy indexing broadcasts row-wise).
        """
        for level in self._groups:
            for group in level:
                kind = group.kind
                if kind == "NOT":
                    values[..., group.out] = NOT_TABLE[values[..., group.ins[0]]]
                elif kind == "BUF":
                    values[..., group.out] = BUF_TABLE[values[..., group.ins[0]]]
                elif kind == "MUX":
                    values[..., group.out] = MUX_TABLE[
                        values[..., group.ins[0]],
                        values[..., group.ins[1]],
                        values[..., group.ins[2]],
                    ]
                elif kind in BINARY_TABLES:
                    values[..., group.out] = BINARY_TABLES[kind][
                        values[..., group.ins[0]], values[..., group.ins[1]]
                    ]
                else:  # pragma: no cover - construction guarantees coverage
                    raise AssertionError(f"unexpected comb kind {kind}")

    def next_dff_values(
        self, values: np.ndarray, reset: bool
    ) -> np.ndarray:
        """The values every DFF will present after the next clock edge."""
        if reset:
            if values.ndim == 2:
                return np.broadcast_to(
                    self.dff_reset, (values.shape[0], self.dff_reset.size)
                ).copy()
            return self.dff_reset.copy()
        return values[..., self.dff_d].copy()

    def compute_activity(
        self,
        prev_values: np.ndarray,
        values: np.ndarray,
        prev_d_activity: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-net activity flags for this cycle (the paper's marking rule).

        *prev_d_activity* carries last cycle's activity vector so a DFF whose
        output is X is only marked active when its D input was active when
        sampled.  Inputs (externally forced nets) are active when they
        changed or are X — an unknown external value may toggle at any time.
        Accepts matching ``(n_nets,)`` vectors or ``(B, n_nets)`` batches.
        """
        # np.not_equal already yields a fresh bool array to grow into the
        # activity vector — no separate `changed` copy.
        active = np.not_equal(prev_values, values)
        is_x = values == X
        active[..., self.input_nets] |= is_x[..., self.input_nets]
        if self.dff_out.size:
            if prev_d_activity is not None:
                dff_driven = prev_d_activity[..., self.dff_d]
            else:
                dff_driven = np.zeros(
                    values.shape[:-1] + (self.dff_out.size,), dtype=bool
                )
            active[..., self.dff_out] |= is_x[..., self.dff_out] & dff_driven
        # Reusable per-group scratch (allocated once per leading shape):
        # the per-cycle fan-in OR and X-mask temporaries write into these
        # buffers instead of allocating ~2 arrays per (level, kind) group.
        lead = values.shape[:-1]
        scratch = self._act_scratch.get(lead)
        if scratch is None:
            scratch = self._act_scratch[lead] = (
                np.empty(lead + (self._max_group,), dtype=bool),
                np.empty(lead + (self._max_group,), dtype=bool),
            )
        driven_buf, x_buf = scratch
        for level in self._groups:
            for group in level:
                width = group.out.size
                driven = driven_buf[..., :width]
                np.take(active, group.ins[0], axis=-1, out=driven)
                for other in group.ins[1:]:
                    np.take(active, other, axis=-1, out=x_buf[..., :width])
                    np.bitwise_or(driven, x_buf[..., :width], out=driven)
                gate_x = x_buf[..., :width]
                np.take(is_x, group.out, axis=-1, out=gate_x)
                np.bitwise_and(gate_x, driven, out=gate_x)
                active[..., group.out] |= gate_x
        return active
