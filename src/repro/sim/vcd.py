"""Minimal value-change-dump (VCD) writer and reader.

Algorithm 2 of the paper materializes the even- and odd-cycle maximized
activity profiles as VCD files before handing them to the power tool; we
keep the same interchange format so the artifacts are inspectable with
standard waveform viewers.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.logic import X

_VCD_CHARS = {0: "0", 1: "1", X: "x"}
_CHAR_VALUES = {"0": 0, "1": 1, "x": X, "X": X, "z": X}


def _identifier(index: int) -> str:
    """Compact VCD identifier for net *index* (printable ASCII base-94)."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 94)
        chars.append(chr(33 + rem))
    return "".join(reversed(chars))


def write_vcd(
    values_matrix: np.ndarray,
    path: str | Path,
    net_names: list[str] | None = None,
    timescale_ns: float = 10.0,
    design: str = "design",
) -> None:
    """Write a (n_cycles, n_nets) 0/1/X matrix as a VCD file."""
    n_cycles, n_nets = values_matrix.shape
    names = net_names or [f"n{i}" for i in range(n_nets)]
    idents = [_identifier(i) for i in range(n_nets)]
    lines = [
        "$date reproduction run $end",
        f"$timescale {int(timescale_ns)}ns $end",
        f"$scope module {design} $end",
    ]
    lines.extend(
        f"$var wire 1 {ident} {name} $end"
        for ident, name in zip(idents, names)
    )
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")
    previous = None
    for cycle in range(n_cycles):
        lines.append(f"#{cycle}")
        row = values_matrix[cycle]
        if previous is None:
            changed = range(n_nets)
        else:
            changed = np.nonzero(row != previous)[0]
        lines.extend(
            f"{_VCD_CHARS[int(row[net])]}{idents[net]}" for net in changed
        )
        previous = row
    Path(path).write_text("\n".join(lines) + "\n")


def read_vcd(path: str | Path) -> tuple[np.ndarray, list[str]]:
    """Read a VCD produced by :func:`write_vcd`; returns (matrix, names)."""
    names: list[str] = []
    ident_to_index: dict[str, int] = {}
    rows: list[np.ndarray] = []
    current: np.ndarray | None = None
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("$var"):
            parts = line.split()
            ident, name = parts[3], parts[4]
            ident_to_index[ident] = len(names)
            names.append(name)
            continue
        if line.startswith("$"):
            continue
        if line.startswith("#"):
            if current is not None:
                rows.append(current.copy())
            if current is None:
                current = np.full(len(names), X, dtype=np.uint8)
            continue
        value_char, ident = line[0], line[1:]
        if current is not None and ident in ident_to_index:
            current[ident_to_index[ident]] = _CHAR_VALUES[value_char]
    if current is not None:
        rows.append(current.copy())
    matrix = np.stack(rows) if rows else np.zeros((0, len(names)), dtype=np.uint8)
    return matrix, names
