"""Validation of the X-based analysis (§3.4).

Two checks, exactly as in the paper:

1. **Toggle superset** (Figure 3.4): every gate that toggles in a
   concrete-input execution must be marked potentially-toggled by the
   symbolic analysis; no gate may be marked only by the input-based run.
2. **Power bound** (Figure 3.5): the X-based per-cycle peak power trace,
   followed along the path the concrete execution takes through the
   execution tree, must dominate the concrete power trace cycle by cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asm.program import Program
from repro.core.activity import ExecutionTree
from repro.core.peakpower import PeakPowerResult
from repro.power.model import PowerModel
from repro.sim.trace import Trace


class PathMismatchError(Exception):
    """A concrete execution did not match any path of the execution tree."""


@dataclass
class ToggleValidation:
    """Gate-set comparison between symbolic and concrete activity."""

    n_common: int
    n_only_symbolic: int
    n_only_concrete: int
    only_concrete_nets: list[int]

    @property
    def is_superset(self) -> bool:
        return self.n_only_concrete == 0


@dataclass
class PowerBoundValidation:
    """Cycle-by-cycle comparison of the bound against a concrete run."""

    n_cycles: int
    bound_mw: np.ndarray
    concrete_mw: np.ndarray
    max_violation_mw: float
    mean_margin_mw: float

    @property
    def is_bound(self) -> bool:
        return self.max_violation_mw <= 1e-9


def run_concrete(cpu, program: Program, inputs: list[int], port_in: int = 0,
                 max_cycles: int = 200_000) -> Trace:
    """Execute one concrete input assignment and return its trace."""
    concrete = program.with_inputs(inputs)
    machine = cpu.make_machine(concrete, symbolic_inputs=False, port_in=port_in)
    trace = Trace(machine.netlist.n_nets)
    cpu.run_to_halt(machine, max_cycles=max_cycles, trace=trace)
    return trace


def validate_toggles(tree: ExecutionTree, concrete: Trace) -> ToggleValidation:
    symbolic_set = tree.toggled_any()
    concrete_set = concrete.toggled_any()
    only_concrete = np.nonzero(concrete_set & ~symbolic_set)[0]
    return ToggleValidation(
        n_common=int((symbolic_set & concrete_set).sum()),
        n_only_symbolic=int((symbolic_set & ~concrete_set).sum()),
        n_only_concrete=len(only_concrete),
        only_concrete_nets=[int(n) for n in only_concrete],
    )


def follow_path(cpu, tree: ExecutionTree, concrete: Trace) -> list[int]:
    """Map the concrete execution onto flat-trace indices, cycle by cycle.

    At every fork the child whose flag assumption matches the concrete
    status register is taken.  Raises :class:`PathMismatchError` when the
    concrete run diverges from the tree (which §3.4 guarantees cannot
    happen for a sound analysis).
    """
    indices: list[int] = []
    segment = tree.segments[0]
    position = 0
    while True:
        sl = tree.segment_slice(segment)
        take = min(segment.n_cycles, len(concrete) - position)
        indices.extend(range(sl.start, sl.start + take))
        position += take
        if segment.end != "fork" or position >= len(concrete):
            return indices
        record = concrete.records[position]  # the re-executed dispatch
        chosen = None
        for fork in segment.forks:
            if all(
                record.values[net] == value
                for net, value in fork.assignment.items()
            ):
                chosen = fork
                break
        if chosen is None:
            raise PathMismatchError(
                f"no fork of segment {segment.index} matches the concrete "
                f"flags at cycle {position}"
            )
        segment = tree.segments[chosen.target]


def validate_power_bound(
    cpu,
    tree: ExecutionTree,
    peak: PeakPowerResult,
    model: PowerModel,
    concrete: Trace,
) -> PowerBoundValidation:
    path = follow_path(cpu, tree, concrete)
    if len(path) != len(concrete):
        raise PathMismatchError(
            f"path covers {len(path)} cycles, concrete run has {len(concrete)}"
        )
    bound = peak.trace_mw[path]
    concrete_power = model.trace_power(
        concrete.values_matrix(), concrete.mem_accesses()
    ).total_mw
    # Cycle 0 of the concrete trace diffs against the reset state, which the
    # per-segment bound also models (root context row), so compare fully.
    margins = bound - concrete_power
    return PowerBoundValidation(
        n_cycles=len(path),
        bound_mw=bound,
        concrete_mw=concrete_power,
        max_violation_mw=float(max(0.0, -margins.min())) if len(margins) else 0.0,
        mean_margin_mw=float(margins.mean()) if len(margins) else 0.0,
    )
