"""Conventional baselines for peak power and energy (§4.2, Figure 1.4).

* ``design_tool`` — rating from the design specification: power analysis
  with the tool's default toggle rate (see
  :func:`repro.power.model.design_tool_rating`).
* ``input_profiling`` — run several concrete input sets, observe peak
  power / energy, and apply the 4/3 guardband of prior work.
* the stressmark baseline lives in :mod:`repro.core.stressmark`.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.asm.program import Program
from repro.power.model import PowerModel, design_tool_rating
from repro.sim.trace import Trace

#: The paper's guardbanding factor, from Intel's thermal design guidance
#: and Kontorinis et al. — matched to the >25% input-induced variability.
GUARDBAND = 4.0 / 3.0


@dataclass
class ProfiledInput:
    """Measurements from one concrete profiling run."""

    inputs: list[int]
    peak_power_mw: float
    avg_power_mw: float
    energy_pj: float
    cycles: int

    @property
    def npe_pj_per_cycle(self) -> float:
        return self.energy_pj / max(self.cycles, 1)


@dataclass
class ProfilingBaseline:
    """Input-based profiling with and without the guardband."""

    runs: list[ProfiledInput]

    @property
    def observed_peak_power_mw(self) -> float:
        return max(run.peak_power_mw for run in self.runs)

    @property
    def observed_npe_pj_per_cycle(self) -> float:
        return max(run.npe_pj_per_cycle for run in self.runs)

    @property
    def guardbanded_peak_power_mw(self) -> float:
        return self.observed_peak_power_mw * GUARDBAND

    @property
    def guardbanded_npe_pj_per_cycle(self) -> float:
        return self.observed_npe_pj_per_cycle * GUARDBAND

    def peak_power_range_mw(self) -> tuple[float, float]:
        """(min, max) across inputs — the error bars of Figs 2.2/4.1."""
        peaks = [run.peak_power_mw for run in self.runs]
        return min(peaks), max(peaks)

    def npe_range(self) -> tuple[float, float]:
        npes = [run.npe_pj_per_cycle for run in self.runs]
        return min(npes), max(npes)


def _measure(
    inputs: list[int], trace: Trace, model: PowerModel
) -> ProfiledInput:
    power = model.trace_power(trace.values_matrix(), trace.mem_accesses())
    return ProfiledInput(
        inputs=inputs,
        peak_power_mw=power.peak(),
        avg_power_mw=power.average(),
        energy_pj=power.energy_pj(),
        cycles=len(trace),
    )


def profile_one(
    cpu, program: Program, inputs: list[int], model: PowerModel,
    port_in: int = 0, max_cycles: int = 200_000,
    engine: str | None = None,
) -> ProfiledInput:
    concrete = program.with_inputs(inputs)
    machine = cpu.make_machine(
        concrete, symbolic_inputs=False, port_in=port_in, engine=engine
    )
    trace = Trace(machine.netlist.n_nets)
    cpu.run_to_halt(machine, max_cycles=max_cycles, trace=trace)
    return _measure(inputs, trace, model)


def input_profiling(
    cpu,
    program: Program,
    input_sets: list[list[int]],
    model: PowerModel,
    batch_size: int | None = None,
    max_cycles: int = 200_000,
    cancel=None,
    engine: str | None = None,
) -> ProfilingBaseline:
    """The paper's profiling baseline over several input sets.

    The input sets are embarrassingly parallel, so with ``batch_size > 1``
    (the default, see :func:`repro.core.activity.default_batch_size`) all
    concrete runs advance in lock-step on a
    :class:`~repro.sim.batch.BatchMachine`; ``batch_size=1`` runs them one
    at a time on the scalar :class:`~repro.sim.machine.Machine`.  Both
    produce bit-identical traces, hence identical measurements.  *cancel*
    (a :class:`repro.parallel.cancel.CancelToken`) is checked between
    input sets on the scalar path and before the lock-step run.
    """
    from repro.core.activity import default_batch_size
    from repro.sim.batch import run_batch_to_halt

    if batch_size is None:
        batch_size = default_batch_size()
    if batch_size <= 1 or len(input_sets) <= 1:
        runs = []
        for inputs in input_sets:
            if cancel is not None:
                cancel.check()
            runs.append(
                profile_one(
                    cpu, program, inputs, model, max_cycles=max_cycles,
                    engine=engine,
                )
            )
        return ProfilingBaseline(runs=runs)
    if cancel is not None:
        cancel.check()
    machines = [
        cpu.make_machine(
            program.with_inputs(inputs), symbolic_inputs=False, port_in=0,
            engine=engine,
        )
        for inputs in input_sets
    ]
    results = run_batch_to_halt(cpu, machines, batch_size, max_cycles)
    runs = [
        _measure(inputs, trace, model)
        for inputs, (trace, _cycles) in zip(input_sets, results)
    ]
    return ProfilingBaseline(runs=runs)


@dataclass
class DesignToolBaseline:
    peak_power_mw: float
    npe_pj_per_cycle: float


def design_tool(model: PowerModel) -> DesignToolBaseline:
    power_mw, energy_pj = design_tool_rating(model)
    return DesignToolBaseline(
        peak_power_mw=power_mw, npe_pj_per_cycle=energy_pj
    )
