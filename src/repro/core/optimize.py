"""Peak-power-reducing software transforms (§3.5, §5.1).

Three source-to-source peephole optimizations, exactly the paper's:

* **OPT1 — register-indexed loads**: ``mov x(rN), rD`` splits into an
  address computation into a scratch register plus a register-indirect
  load, spreading one cycle's activity over several.
* **OPT2 — POP splitting**: ``pop rD`` (``mov @sp+, rD``) splits into
  ``mov @sp, rD`` + ``add #2, sp`` so the bus transfer and the stack
  pointer increment no longer coincide.
* **OPT3 — multiplier NOP**: a ``nop`` after firing the multiplier (OP2
  write) keeps the core quiet during the array's busy cycle.

``suggest`` inspects COI reports to pick the transforms that target the
actual peaks; ``apply`` rewrites the assembly source.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.coi import CycleOfInterest

_INDEXED_LOAD_RE = re.compile(
    r"^(?P<indent>\s*)(?P<label>\w+:)?\s*mov\s+(?P<off>[-\w]+)\((?P<base>r\d+|sp)\)\s*,"
    r"\s*(?P<dst>r\d+)\s*(?P<comment>;.*)?$"
)
_POP_RE = re.compile(
    r"^(?P<indent>\s*)(?P<label>\w+:)?\s*pop\s+(?P<dst>r\d+)\s*(?P<comment>;.*)?$"
)
_OP2_WRITE_RE = re.compile(
    r"^\s*(\w+:)?\s*mov\s+.*,\s*&(0x0138|OP2)\s*(;.*)?$", re.IGNORECASE
)
_NOP_RE = re.compile(r"^\s*(\w+:)?\s*nop\s*(;.*)?$")


@dataclass
class OptimizationResult:
    """A rewritten source plus which transforms fired where."""

    source: str
    applied: list[tuple[str, int]]  # (opt name, source line number)

    @property
    def n_applied(self) -> int:
        return len(self.applied)


def _label_prefix(match: re.Match) -> str:
    label = match.group("label")
    return f"{label}\n" if label else ""


def apply_opt1(source: str, scratch: str = "r15") -> OptimizationResult:
    """Split register-indexed loads (not stores) via *scratch*."""
    lines = source.splitlines()
    output, applied = [], []
    for number, line in enumerate(lines, start=1):
        match = _INDEXED_LOAD_RE.match(line)
        if match and match.group("base") != match.group("dst"):
            off, base = match.group("off"), match.group("base")
            dst = match.group("dst")
            prefix = _label_prefix(match)
            output.append(
                f"{prefix}        mov #{off}, {scratch}\n"
                f"        add {base}, {scratch}\n"
                f"        mov @{scratch}, {dst}"
            )
            applied.append(("OPT1", number))
        else:
            output.append(line)
    return OptimizationResult("\n".join(output), applied)


def apply_opt2(source: str) -> OptimizationResult:
    """Split POP into a stack load and a separate SP increment."""
    lines = source.splitlines()
    output, applied = [], []
    for number, line in enumerate(lines, start=1):
        match = _POP_RE.match(line)
        if match:
            dst = match.group("dst")
            prefix = _label_prefix(match)
            output.append(
                f"{prefix}        mov @sp, {dst}\n        add #2, sp"
            )
            applied.append(("OPT2", number))
        else:
            output.append(line)
    return OptimizationResult("\n".join(output), applied)


def apply_opt3(source: str) -> OptimizationResult:
    """Insert a NOP after every multiplier trigger (OP2 write)."""
    lines = source.splitlines()
    output, applied = [], []
    for number, line in enumerate(lines, start=1):
        output.append(line)
        if _OP2_WRITE_RE.match(line):
            following = lines[number] if number < len(lines) else ""
            if not _NOP_RE.match(following):
                output.append("        nop")
                applied.append(("OPT3", number))
    return OptimizationResult("\n".join(output), applied)


_TRANSFORMS = {
    "OPT1": apply_opt1,
    "OPT2": apply_opt2,
    "OPT3": apply_opt3,
}


def suggest(reports: list[CycleOfInterest]) -> list[str]:
    """Pick transforms that target the observed peaks (§3.5's analysis)."""
    suggestions: list[str] = []
    for report in reports:
        text = report.executing[1]
        top_modules = [name for name, _p in report.module_breakdown[:3]]
        if "multiplier" in top_modules and "OPT3" not in suggestions:
            suggestions.append("OPT3")
        if re.search(r"mov\s+-?\w+\(r\d+\)", text) and "OPT1" not in suggestions:
            suggestions.append("OPT1")
        if "@sp+" in text.replace(" ", "") and "OPT2" not in suggestions:
            suggestions.append("OPT2")
    return suggestions


def apply(source: str, opts: list[str], scratch: str = "r15") -> OptimizationResult:
    """Apply the named transforms in sequence."""
    applied: list[tuple[str, int]] = []
    current = source
    for name in opts:
        try:
            transform = _TRANSFORMS[name]
        except KeyError:
            raise ValueError(f"unknown optimization {name!r}") from None
        result = transform(current) if name != "OPT1" else transform(current, scratch)
        current = result.source
        applied.extend(result.applied)
    return OptimizationResult(current, applied)
