"""Genetic-algorithm stressmark generation (the Audit-style baseline).

Kim et al.'s Audit framework breeds instruction sequences that maximize a
power objective; the paper adapts it to target peak instantaneous power
and average power on openMSP430.  This module does the same for our core:
a genome is a short sequence of parameterized instruction templates, run
twice in a loop on the gate-level model, and scored by measured peak (or
average) power.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.asm import assemble
from repro.core.baselines import GUARDBAND
from repro.power.model import PowerModel
from repro.sim.trace import Trace

#: instruction templates; {r} registers drawn from r4-r11, {v} random word,
#: {n} small even offset.  r12 is the data-area base pointer.
TEMPLATES = [
    "mov #{v}, r{r}",
    "add r{r}, r{r2}",
    "xor r{r}, r{r2}",
    "and #{v}, r{r}",
    "swpb r{r}",
    "rla r{r}",
    "mov {n}(r12), r{r}",
    "mov r{r}, {n}(r12)",
    "push r{r}",
    "pop r{r}",
    "mov r{r}, &0x0130",  # MPY
    "mov r{r}, &0x0138",  # OP2 (fires the multiplier)
    "mov &0x013A, r{r}",  # RESLO
]

# r12 is the data-area base and r13 the loop counter: both are outside
# the r4-r11 range the gene pool draws from, so no gene can clobber them.
HEADER = """
        .equ WDTCTL, 0x0120
        .org 0xF000
start:  mov #0x5A80, &WDTCTL
        mov #0x0400, r12
        mov #0xA5A5, r4
        mov #0x5A5A, r5
        mov #2, r13         ; loop twice
"""

FOOTER = """
        dec r13
        jnz body
end:    jmp end
"""


@dataclass
class Gene:
    template: int
    r: int
    r2: int
    value: int
    offset: int

    def render(self) -> str:
        text = TEMPLATES[self.template]
        return "        " + text.format(
            r=self.r, r2=self.r2, v=self.value, n=self.offset
        )


@dataclass
class Stressmark:
    """The winning individual and its measured requirements."""

    source: str
    peak_power_mw: float
    avg_power_mw: float
    generations: int

    @property
    def guardbanded_peak_power_mw(self) -> float:
        return self.peak_power_mw * GUARDBAND

    def npe_pj_per_cycle(self, clock_ns: float) -> float:
        """Average power expressed as energy per cycle (the NPE metric)."""
        return self.avg_power_mw * clock_ns

    def guardbanded_npe(self, clock_ns: float) -> float:
        return self.npe_pj_per_cycle(clock_ns) * GUARDBAND


def _random_gene(rng: np.random.Generator) -> Gene:
    return Gene(
        template=int(rng.integers(0, len(TEMPLATES))),
        r=int(rng.integers(4, 12)),
        r2=int(rng.integers(4, 12)),
        value=int(rng.integers(0, 0x10000)),
        offset=int(rng.integers(0, 8)) * 2,
    )


def _genome_source(genome: list[Gene]) -> str:
    pushes = 0
    lines = ["body:"]
    for gene in genome:
        text = gene.render()
        # keep the stack balanced: a pop with nothing pushed is skipped
        if "push" in text:
            pushes += 1
        if "pop" in text:
            if pushes == 0:
                continue
            pushes -= 1
        lines.append(text)
    lines.extend("        pop r15" for _ in range(pushes))
    return HEADER + "\n".join(lines) + FOOTER


def _evaluate(cpu, model: PowerModel, genome: list[Gene]) -> tuple[float, float]:
    program = assemble(_genome_source(genome), "stressmark")
    machine = cpu.make_machine(program, symbolic_inputs=False, port_in=0)
    trace = Trace(machine.netlist.n_nets)
    cpu.run_to_halt(machine, max_cycles=5_000, trace=trace)
    power = model.trace_power(trace.values_matrix(), trace.mem_accesses())
    return power.peak(), power.average()


def _evaluate_population(
    cpu, model: PowerModel, pool: list[list[Gene]], batch_size: int
) -> list[tuple[float, float]]:
    """Score every genome of one generation; malformed individuals get 0.

    With ``batch_size > 1`` all viable genomes run to halt in lock-step on
    a :class:`~repro.sim.batch.BatchMachine` — the population evaluation
    is the GA's entire cost, and its members are independent programs on
    the same netlist.  Lock-step traces are bit-identical to scalar runs,
    so evolution is unchanged; any batch-level failure falls back to the
    scalar per-genome path, which reproduces the per-individual exception
    semantics exactly.
    """
    scores: list[tuple[float, float]] = [(0.0, 0.0)] * len(pool)
    if batch_size <= 1 or len(pool) <= 1:
        for position, genome in enumerate(pool):
            try:
                scores[position] = _evaluate(cpu, model, genome)
            except Exception:
                pass  # malformed individual: selected out
        return scores
    try:
        machines = []
        positions = []
        for position, genome in enumerate(pool):
            try:
                program = assemble(_genome_source(genome), "stressmark")
                machines.append(
                    cpu.make_machine(program, symbolic_inputs=False, port_in=0)
                )
                positions.append(position)
            except Exception:
                pass  # assembly failure: keep the zero score
        from repro.sim.batch import run_batch_to_halt

        results = run_batch_to_halt(cpu, machines, batch_size, max_cycles=5_000)
        for position, (trace, _cycles) in zip(positions, results):
            power = model.trace_power(
                trace.values_matrix(), trace.mem_accesses()
            )
            scores[position] = (power.peak(), power.average())
        return scores
    except Exception:
        # One bad lane poisons a lock-step batch; redo the generation on
        # the scalar path so only the offending genome scores zero.
        return _evaluate_population(cpu, model, pool, batch_size=1)


@dataclass
class Island:
    """One GA population plus its private random stream and best-ever.

    The whole evolution of an island is a function of this state, which
    is what makes the island model reproducible at any worker count:
    islands are seeded deterministically, evolved independently between
    migrations, and migration itself is a synchronized deterministic
    ring exchange.
    """

    rng: np.random.Generator
    pool: list[list[Gene]]
    #: best-ever (peak_mw, avg_mw, genome), by the caller's objective
    best: tuple[float, float, list[Gene]] | None = None


def make_island(seed: int, population: int, genome_length: int) -> Island:
    """A freshly seeded island with a random starting population."""
    rng = np.random.default_rng(seed)
    pool = [
        [_random_gene(rng) for _ in range(genome_length)]
        for _ in range(population)
    ]
    return Island(rng=rng, pool=pool)


def evolve_island(
    cpu,
    model: PowerModel,
    island: Island,
    objective: str,
    generations: int,
    population: int,
    genome_length: int,
    batch_size: int,
    cancel=None,
) -> Island:
    """Advance one island *generations* steps of the GA loop, in place.

    This is the original single-population generation loop verbatim, so
    ``islands=1`` evolution is bit-identical to the classic GA.  *cancel*
    is an optional :class:`repro.parallel.cancel.CancelToken` checked
    between generations; a set token aborts the evolution with
    :class:`repro.parallel.cancel.JobCancelled` (a ``BaseException``, so
    the batch-evaluation fallback's broad ``except Exception`` cannot
    swallow it).
    """
    rng = island.rng
    pool = island.pool
    best = island.best
    for _generation in range(generations):
        if cancel is not None:
            cancel.check()
        scores = _evaluate_population(cpu, model, pool, batch_size)
        scored = []
        for genome, (peak, avg) in zip(pool, scores):
            fitness = peak if objective == "peak" else avg
            scored.append((fitness, peak, avg, genome))
        scored.sort(key=lambda item: -item[0])
        if best is None or scored[0][0] > (
            best[0] if objective == "peak" else best[1]
        ):
            best = (scored[0][1], scored[0][2], scored[0][3])
        survivors = [genome for _f, _p, _a, genome in scored[: population // 2]]
        children = []
        while len(survivors) + len(children) < population:
            mother, father = rng.choice(len(survivors), size=2, replace=True)
            cut = int(rng.integers(1, genome_length))
            child = list(survivors[mother][:cut]) + list(survivors[father][cut:])
            for position in range(genome_length):
                if rng.random() < 0.15:
                    child[position] = _random_gene(rng)
            children.append(child)
        pool = survivors + children
    island.pool = pool
    island.best = best
    return island


#: offset between island seeds; any constant works, a prime keeps the
#: derived streams visibly distinct in logs
ISLAND_SEED_STRIDE = 9973


def _int_knob(value: int | None, env_var: str, default: int, floor: int) -> int:
    """Resolve an integer GA knob: explicit arg > *env_var* > *default*."""
    if value is None:
        raw = os.environ.get(env_var, "")
        if not raw.strip():
            return default
        try:
            value = int(raw)
        except ValueError:
            message = f"{env_var} must be an integer, got {raw!r}"
            raise ValueError(message) from None
    if value < floor:
        name = env_var.removeprefix("REPRO_").lower()
        raise ValueError(f"{name} must be >= {floor}, got {value}")
    return value


def resolve_island_knobs(
    islands: int | None = None, migration_interval: int | None = None
) -> tuple[int, int]:
    """Resolve the island-model knobs the way every other engine knob
    resolves: explicit argument, then ``REPRO_ISLANDS`` /
    ``REPRO_MIGRATION_INTERVAL`` (exported by ``suite``/``bench``
    ``--islands``/``--migration-interval``), then the classic
    single-population defaults ``(1, 2)``."""
    return (
        _int_knob(islands, "REPRO_ISLANDS", 1, 1),
        _int_knob(migration_interval, "REPRO_MIGRATION_INTERVAL", 2, 1),
    )


def generate_stressmark(
    cpu,
    model: PowerModel,
    objective: str = "peak",
    population: int = 10,
    generations: int = 6,
    genome_length: int = 12,
    seed: int = 42,
    batch_size: int | None = None,
    islands: int | None = None,
    migration_interval: int | None = None,
    workers: int | None = None,
    cancel=None,
) -> Stressmark:
    """Breed a stressmark targeting ``"peak"`` or ``"average"`` power.

    *batch_size* selects how many individuals are simulated in lock-step
    per generation (``1`` = the scalar reference, ``None`` =
    :func:`repro.core.activity.default_batch_size`); scores — and hence
    the whole evolution — are identical for every setting.

    *islands* switches to the island model: that many independent
    populations (seeded ``seed, seed + stride, ...``) evolve in epochs
    of *migration_interval* generations, exchanging their best-ever
    genome around a deterministic ring between epochs, and the fittest
    individual across islands wins.  *workers* spreads the islands over
    that many fork-start worker processes (``None`` honors
    ``REPRO_WORKERS``); the evolution is a pure function of the island
    seeds, so results are identical at **any** worker count.

    ``islands=None``/``migration_interval=None`` honor ``REPRO_ISLANDS``
    and ``REPRO_MIGRATION_INTERVAL`` (the CLI's ``--islands`` /
    ``--migration-interval``), defaulting to the classic single
    population.  *cancel* (a
    :class:`repro.parallel.cancel.CancelToken`) is checked between GA
    generations/epochs; cancellation aborts, it never alters scores.
    """
    if objective not in ("peak", "average"):
        raise ValueError("objective must be 'peak' or 'average'")
    islands, migration_interval = resolve_island_knobs(
        islands, migration_interval
    )
    if batch_size is None:
        from repro.core.activity import default_batch_size

        batch_size = default_batch_size()

    if islands == 1:
        island = make_island(seed, population, genome_length)
        evolve_island(
            cpu, model, island, objective, generations,
            population, genome_length, batch_size, cancel=cancel,
        )
        best = island.best
    else:
        from repro.parallel.islands import evolve_archipelago

        states = [
            make_island(
                seed + index * ISLAND_SEED_STRIDE, population, genome_length
            )
            for index in range(islands)
        ]
        states = evolve_archipelago(
            cpu, model, states, objective, generations, population,
            genome_length, batch_size, migration_interval, workers,
            cancel=cancel,
        )
        best = None
        for island in states:  # first island wins ties: deterministic
            if island.best is None:
                continue
            if best is None or _fitness(island.best, objective) > _fitness(
                best, objective
            ):
                best = island.best

    peak, avg, genome = best
    return Stressmark(
        source=_genome_source(genome),
        peak_power_mw=peak,
        avg_power_mw=avg,
        generations=generations,
    )


def _fitness(best: tuple[float, float, list[Gene]], objective: str) -> float:
    return best[0] if objective == "peak" else best[1]
