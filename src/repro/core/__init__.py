"""The paper's contribution: input-independent peak power and energy.

* :mod:`repro.core.activity` — Algorithm 1, symbolic (X-propagating)
  gate-activity analysis over all execution paths.
* :mod:`repro.core.peakpower` — Algorithm 2, even/odd X-assignment and the
  per-cycle peak power trace.
* :mod:`repro.core.peakenergy` — §3.3, path-structured peak energy bounds.
* :mod:`repro.core.validation` — §3.4, toggle-superset and power-bound
  checks against concrete-input runs.
* :mod:`repro.core.coi` — §3.5, cycles-of-interest reports.
* :mod:`repro.core.optimize` — §5.1, the OPT1/OPT2/OPT3 transforms.
* :mod:`repro.core.stressmark` — the GA stressmark baseline.
* :mod:`repro.core.baselines` — design-tool and guardbanded profiling.
* :mod:`repro.core.api` — one-call pipeline producing a full report.
"""

from repro.core.activity import ExecutionTree, PathExplosionError, Segment, explore
from repro.core.peakpower import PeakPowerResult, compute_peak_power
from repro.core.peakenergy import PeakEnergyResult, compute_peak_energy
from repro.core.api import AnalysisReport, analyze

__all__ = [
    "explore",
    "ExecutionTree",
    "Segment",
    "PathExplosionError",
    "compute_peak_power",
    "PeakPowerResult",
    "compute_peak_energy",
    "PeakEnergyResult",
    "analyze",
    "AnalysisReport",
]
