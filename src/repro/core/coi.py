"""Cycles-of-interest analysis (§3.5, Figure 3.6).

Maps peaks in the input-independent peak power trace back to the
instructions occupying the machine and the microarchitectural modules
burning the power, so software optimizations (OPT1-3) can target them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.asm.disasm import disassemble_at
from repro.asm.program import Program
from repro.core.activity import ExecutionTree
from repro.core.peakpower import PeakPowerResult


@dataclass
class CycleOfInterest:
    """One peak-power cycle with its culprit instructions and breakdown."""

    flat_cycle: int
    power_mw: float
    state: str
    #: instruction occupying execute/mem (address, disassembly)
    executing: tuple[int | None, str]
    #: instruction being fetched by the frontend, when known
    fetching: tuple[int | None, str]
    #: per-module power, highest first
    module_breakdown: list[tuple[str, float]]

    def describe(self) -> str:
        exec_addr, exec_text = self.executing
        where = f"{exec_addr:#06x} {exec_text}" if exec_addr is not None else exec_text
        modules = ", ".join(f"{m}={p:.3f}" for m, p in self.module_breakdown[:4])
        return (
            f"cycle {self.flat_cycle} [{self.state}] {self.power_mw:.3f} mW — "
            f"executing {where}; top modules: {modules}"
        )


def _instruction_addresses(tree: ExecutionTree) -> list[int | None]:
    """Current-instruction address per flat cycle (from dispatch points)."""
    addresses: list[int | None] = [None] * tree.n_cycles
    for segment in tree.segments:
        sl = tree.segment_slice(segment)
        if segment.parent is not None:
            parent = tree.segments[segment.parent[0]]
            parent_last = parent.flat_start + parent.n_cycles - 1
            current = addresses[parent_last]
        else:
            current = None
        for index in range(sl.start, sl.stop):
            record = tree.flat_trace.records[index]
            if record.annotations.get("state") == "DISPATCH":
                pc = record.annotations.get("pc")
                if pc is not None:
                    current = (pc - 2) & 0xFFFF
            addresses[index] = current
    return addresses


def cycles_of_interest(
    tree: ExecutionTree,
    peak: PeakPowerResult,
    program: Program,
    count: int = 5,
    min_separation: int = 2,
) -> list[CycleOfInterest]:
    """The *count* highest peak-power cycles, at least *min_separation*
    cycles apart, annotated as in Figure 3.6."""
    order = np.argsort(-peak.trace_mw)
    chosen: list[int] = []
    for cycle in order:
        if all(abs(int(cycle) - c) >= min_separation for c in chosen):
            chosen.append(int(cycle))
        if len(chosen) == count:
            break

    addresses = _instruction_addresses(tree)
    reports = []
    for cycle in sorted(chosen):
        record = tree.flat_trace.records[cycle]
        state = record.annotations.get("state", "?")
        exec_addr = addresses[cycle]
        if exec_addr is not None:
            exec_text, _ = disassemble_at(program.words, exec_addr)
        else:
            exec_text = "(reset)"
        pc = record.annotations.get("pc")
        if state == "FETCH" and pc is not None:
            fetch_text, _ = disassemble_at(program.words, pc)
            fetching: tuple[int | None, str] = (pc, fetch_text)
        else:
            fetching = (None, "-")
        breakdown = sorted(
            ((name, float(series[cycle])) for name, series in peak.module_mw.items()),
            key=lambda item: -item[1],
        )
        reports.append(
            CycleOfInterest(
                flat_cycle=cycle,
                power_mw=float(peak.trace_mw[cycle]),
                state=state,
                executing=(exec_addr, exec_text),
                fetching=fetching,
                module_breakdown=breakdown,
            )
        )
    return reports


def dominant_modules(reports: list[CycleOfInterest], top: int = 3) -> list[str]:
    """Modules that appear most often at the top of COI breakdowns."""
    scores: dict[str, float] = {}
    for report in reports:
        for name, power in report.module_breakdown[:top]:
            scores[name] = scores.get(name, 0.0) + power
    return [name for name, _ in sorted(scores.items(), key=lambda kv: -kv[1])]
