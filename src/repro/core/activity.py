"""Input-independent gate activity analysis (Algorithm 1).

Symbolic simulation of the application binary on the processor netlist:
all inputs are X, the machine steps until the *next* program counter value
would contain an X — an input-dependent conditional branch.  The run then
forks: for every concretization of the unknown status flags the branch
reads, a pending path is pushed, keyed by the (state, assignment) pair so
already-simulated paths are never re-simulated (this is what lets
input-dependent loops terminate).

Two engines implement the exploration:

* the **scalar** engine simulates one pending path at a time on a
  :class:`~repro.sim.machine.Machine` (the original reference), and
* the **batched** engine (the default) drains the pending-path queue up to
  ``batch_size`` paths at a time on a
  :class:`~repro.sim.batch.BatchMachine`, settling all of them per cycle
  with one set of matrix operations.  Retired lanes are refilled from the
  queue mid-flight so the batch stays full.

Both produce the *same* :class:`ExecutionTree`, bit for bit: a pending
path's entire future is determined by its memoization key, so the batched
engine simulates the same set of path segments (in whatever order the
batch schedule visits them) and then replays the scalar engine's exact
stack discipline over the discovered segment graph to assign segment
indices, parents, fork targets and the flat-trace layout.

The output is an :class:`ExecutionTree`: a set of trace *segments* linked
by fork edges (including memoized back/cross edges), plus the flattened
concatenated trace that Algorithm 2 consumes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.asm.program import Program
from repro.service import faults
from repro.sim.batch import BatchMachine
from repro.sim.trace import CycleRecord, Trace

#: batch width used when ``explore(..., batch_size=None)``; override with
#: the ``REPRO_BATCH_SIZE`` environment variable (1 = scalar engine).
DEFAULT_BATCH_SIZE = 8

#: wider default for the bitplane/native engines: their per-cycle cost is
#: dominated by fixed dispatch overhead (numpy op issue for bitplane, the
#: per-settle foreign call + trace bookkeeping for native) that amortizes
#: across live lanes, so deep pending-path queues benefit from more lanes
#: at negligible memory cost (a lane is ~18 KB of packed planes).
BITPLANE_DEFAULT_BATCH_SIZE = 32


def default_batch_size(engine: str | None = None) -> int:
    """Batch width for *engine* (resolved) honoring ``REPRO_BATCH_SIZE``."""
    raw = os.environ.get("REPRO_BATCH_SIZE")
    if not raw:
        if engine in ("bitplane", "native"):
            return BITPLANE_DEFAULT_BATCH_SIZE
        return DEFAULT_BATCH_SIZE
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_BATCH_SIZE must be an integer, got {raw!r}"
        ) from None


class PathExplosionError(Exception):
    """The execution tree exceeded the configured exploration budget."""


@dataclass
class Fork:
    """One outgoing edge of a segment's terminal branch."""

    #: status-register concretization taken on this edge
    assignment: dict[int, int]
    #: target segment index (resolved after exploration)
    target: int


@dataclass
class Segment:
    """A branch-free stretch of symbolically simulated cycles."""

    index: int
    #: (parent segment index, fork number) — None for the root
    parent: tuple[int, int] | None
    #: slice [start, start + n_cycles) of this segment in the flat trace
    flat_start: int = 0
    n_cycles: int = 0
    #: "halt" or "fork"
    end: str = ""
    forks: list[Fork] = field(default_factory=list)


@dataclass
class ExecutionTree:
    """Algorithm 1's annotated symbolic execution tree."""

    segments: list[Segment]
    flat_trace: Trace
    n_memo_hits: int = 0

    @property
    def n_cycles(self) -> int:
        return len(self.flat_trace)

    def segment_slice(self, segment: Segment) -> slice:
        return slice(segment.flat_start, segment.flat_start + segment.n_cycles)

    def toggled_any(self) -> np.ndarray:
        """Gates that can toggle in *some* execution — Figure 3.4's set."""
        return self.flat_trace.toggled_any()

    def edges(self) -> list[tuple[int, int]]:
        """(from_segment, to_segment) fork edges, memo edges included."""
        pairs = []
        for segment in self.segments:
            pairs.extend((segment.index, fork.target) for fork in segment.forks)
        return pairs

    def is_cyclic(self) -> bool:
        """True when memoization produced a loop (input-dependent loop)."""
        color = {}

        def visit(node: int) -> bool:
            color[node] = 1
            for _src, dst in [
                (node, f.target) for f in self.segments[node].forks
            ]:
                if color.get(dst) == 1:
                    return True
                if color.get(dst, 0) == 0 and visit(dst):
                    return True
            color[node] = 2
            return False

        return visit(0)


@dataclass
class _Pending:
    snapshot: dict
    forces: dict[int, int]
    parent: tuple[int, int] | None
    memo_key: bytes


def _memo_key(evaluator, snapshot: dict, forces: dict[int, int]) -> bytes:
    """Key = architectural state at the branch + the flag concretization.

    *evaluator* (either engine) tells the fingerprint how to read the
    snapshot's state array; the induced equivalence relation — and hence
    the execution tree — is representation-independent.
    """
    import hashlib

    from repro.sim.machine import Machine

    h = hashlib.blake2b(digest_size=16)
    h.update(Machine.snapshot_state_key(snapshot, evaluator))
    for net in sorted(forces):
        h.update(net.to_bytes(4, "little"))
        h.update(forces[net].to_bytes(1, "little"))
    return h.digest()


_ROOT_KEY = b"root"


def explore(
    cpu,
    program: Program,
    max_cycles: int = 200_000,
    max_segments: int = 4_096,
    max_cycles_per_path: int = 50_000,
    batch_size: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
    cancel=None,
) -> ExecutionTree:
    """Run Algorithm 1 for *program* on the gate-level *cpu*.

    *batch_size* selects the scheduling: ``1`` runs one pending path at a
    time, anything larger settles that many paths in lock-step, and
    ``None`` (the default) uses :func:`default_batch_size`.  *engine*
    selects the simulation representation: ``"bitplane"`` (packed dual
    rail, the default) or ``"reference"`` (the uint8 oracle); ``None``
    honors ``REPRO_ENGINE``.  *workers* shards the pending-path queue
    across that many fork-start worker processes (``None`` honors
    ``REPRO_WORKERS``, ``0`` means one per core, 1 stays in-process).
    Every combination returns the identical tree, bit for bit.  *cancel*
    is an optional :class:`repro.parallel.cancel.CancelToken` checked
    between path-queue batches; a set token aborts the exploration with
    :class:`repro.parallel.cancel.JobCancelled` (results are never
    altered by cancellation, only abandoned).

    Returns the annotated execution tree.  Raises
    :class:`PathExplosionError` when the exploration budget is exceeded and
    :class:`repro.cpu.UnresolvedPCError` when the PC becomes X outside a
    forkable conditional branch.
    """
    if batch_size is None:
        from repro.sim.bitplane import default_engine

        batch_size = default_batch_size(engine or default_engine())
    from repro.parallel.pool import fork_available, resolve_workers

    workers = resolve_workers(workers)
    if workers > 1 and fork_available():
        from repro.parallel.explore import explore_sharded

        return explore_sharded(
            cpu, program, max_cycles, max_segments, max_cycles_per_path,
            max(batch_size, 1), engine, workers, cancel=cancel,
        )
    if batch_size <= 1:
        return _explore_scalar(
            cpu, program, max_cycles, max_segments, max_cycles_per_path,
            engine, cancel=cancel,
        )
    return _explore_batched(
        cpu, program, max_cycles, max_segments, max_cycles_per_path,
        batch_size, engine, cancel=cancel,
    )


# ----------------------------------------------------------------------
# Scalar engine: one pending path at a time (the original reference).
# ----------------------------------------------------------------------
def _explore_scalar(
    cpu,
    program: Program,
    max_cycles: int,
    max_segments: int,
    max_cycles_per_path: int,
    engine: str | None = None,
    cancel=None,
) -> ExecutionTree:
    machine = cpu.make_machine(program, symbolic_inputs=True, engine=engine)
    flat = Trace(machine.netlist.n_nets)
    segments: list[Segment] = []
    total_cycles = 0

    root = _Pending(
        snapshot=machine.snapshot(), forces={}, parent=None, memo_key=_ROOT_KEY
    )
    stack: list[_Pending] = [root]
    #: memo_key -> segment index (future segments get patched when popped)
    seen: dict[bytes, int] = {root.memo_key: 0}
    pending_targets: dict[bytes, list[tuple[int, int]]] = {}
    n_memo_hits = 0

    while stack:
        if cancel is not None:
            cancel.check()
        faults.hit("explore.batch")
        pending = stack.pop()
        if len(segments) >= max_segments:
            raise PathExplosionError(
                f"{program.name}: more than {max_segments} path segments"
            )
        segment = Segment(index=len(segments), parent=pending.parent)
        segment.flat_start = len(flat)
        segments.append(segment)
        seen[pending.memo_key] = segment.index
        for src, fork_no in pending_targets.pop(pending.memo_key, []):
            segments[src].forks[fork_no].target = segment.index

        machine.restore(pending.snapshot)
        machine.next_dff_forces = dict(pending.forces)

        cycles_here = 0
        while True:
            snap_before = machine.snapshot()
            machine.step(trace=flat)
            cycles_here += 1
            total_cycles += 1
            if total_cycles > max_cycles:
                raise PathExplosionError(
                    f"{program.name}: exceeded {max_cycles} total cycles"
                )
            if cycles_here > max_cycles_per_path:
                raise PathExplosionError(
                    f"{program.name}: path exceeded {max_cycles_per_path} cycles"
                )
            if cpu.halted(machine):
                segment.end = "halt"
                break
            if cpu.pc_next_unknown(machine):
                assignments = cpu.branch_fork_assignments(machine)
                # Drop the X-condition dispatch cycle: each child re-executes
                # it with concrete flags, keeping flat cycles 1:1 with real
                # executions (and the peak bound tight).
                flat.records.pop()
                cycles_here -= 1
                total_cycles -= 1
                segment.end = "fork"
                for assignment in assignments:
                    key = _memo_key(
                        machine.evaluator, snap_before, assignment
                    )
                    fork_no = len(segment.forks)
                    if key in seen:
                        n_memo_hits += 1
                        segment.forks.append(Fork(assignment, seen[key]))
                        if seen[key] == -1:  # queued but not yet simulated
                            pending_targets.setdefault(key, []).append(
                                (segment.index, fork_no)
                            )
                    else:
                        seen[key] = -1
                        segment.forks.append(Fork(assignment, -1))
                        pending_targets.setdefault(key, []).append(
                            (segment.index, fork_no)
                        )
                        stack.append(
                            _Pending(
                                snapshot=snap_before,
                                forces=assignment,
                                parent=(segment.index, fork_no),
                                memo_key=key,
                            )
                        )
                break
        segment.n_cycles = cycles_here

    tree = ExecutionTree(
        segments=segments, flat_trace=flat, n_memo_hits=n_memo_hits
    )
    _check_resolved(tree)
    return tree


# ----------------------------------------------------------------------
# Batched engine: drain the pending-path queue B lanes at a time.
#
# NOTE: repro.parallel.explore._simulate_chunk mirrors this drain loop
# (minus the refill/memoization, which stay with the sharding master).
# Any change to the fork semantics here — the pre-step snapshot, the
# dispatch-record pop, the memo-key enumeration — must be applied there
# too; tests/test_parallel.py pins the workers=1 ≡ workers=N equivalence.
# ----------------------------------------------------------------------
@dataclass
class _Node:
    """One simulated path segment, keyed by its memoization key."""

    key: bytes
    records: list[CycleRecord] = field(default_factory=list)
    end: str = ""
    #: (flag assignment, child memo key) in branch-enumeration order
    forks: list[tuple[dict[int, int], bytes]] = field(default_factory=list)


def _explore_batched(
    cpu,
    program: Program,
    max_cycles: int,
    max_segments: int,
    max_cycles_per_path: int,
    batch_size: int,
    engine: str | None = None,
    cancel=None,
) -> ExecutionTree:
    machine = cpu.make_machine(program, symbolic_inputs=True, engine=engine)
    # record_packed defers unpacking to the trace boundary (lazy per
    # record, bulk for values_matrix/active_matrix): on the packed
    # engines the explore loop then never unpacks a row it only forks
    # from.  The parallel explorer has always run this way; the replay
    # in _assemble_tree is representation-agnostic either way.
    batch = BatchMachine(
        machine.netlist,
        machine.ports,
        machine.evaluator,
        batch_size,
        annotator=machine.annotator,
        record_packed=True,
    )
    evaluator = machine.evaluator

    root = _Pending(
        snapshot=machine.snapshot(), forces={}, parent=None, memo_key=_ROOT_KEY
    )
    stack: list[_Pending] = [root]
    seen: set[bytes] = {root.memo_key}
    nodes: dict[bytes, _Node] = {}
    total_cycles = 0

    lane_node: dict[int, _Node] = {}  # id(lane) -> segment being simulated
    lane_cycles: dict[int, int] = {}

    def start(pending: _Pending) -> None:
        if len(nodes) >= max_segments:
            raise PathExplosionError(
                f"{program.name}: more than {max_segments} path segments"
            )
        node = _Node(key=pending.memo_key)
        nodes[pending.memo_key] = node
        lane = batch.load(pending.snapshot, pending.forces)
        lane_node[id(lane)] = node
        lane_cycles[id(lane)] = 0

    def refill() -> None:
        while stack and batch.n_free:
            start(stack.pop())

    refill()
    while batch.lanes:
        if cancel is not None:
            cancel.check()
        faults.hit("explore.batch")
        # Pre-step snapshots: a fork restarts its children from the state
        # *before* the X-condition dispatch cycle (they re-execute it with
        # concrete flags), exactly like the scalar engine's snap_before.
        snap_before = {id(lane): batch.snapshot(lane) for lane in batch.lanes}
        records = batch.step()
        for lane, record in zip(list(batch.lanes), records):
            node = lane_node[id(lane)]
            node.records.append(record)
            lane_cycles[id(lane)] += 1
            total_cycles += 1
            if total_cycles > max_cycles:
                raise PathExplosionError(
                    f"{program.name}: exceeded {max_cycles} total cycles"
                )
            if lane_cycles[id(lane)] > max_cycles_per_path:
                raise PathExplosionError(
                    f"{program.name}: path exceeded {max_cycles_per_path} cycles"
                )
            view = batch.lane_view(lane)
            if cpu.halted(view):
                node.end = "halt"
            elif cpu.pc_next_unknown(view):
                assignments = cpu.branch_fork_assignments(view)
                node.records.pop()
                lane_cycles[id(lane)] -= 1
                total_cycles -= 1
                node.end = "fork"
                snapshot = snap_before[id(lane)]
                for assignment in assignments:
                    key = _memo_key(evaluator, snapshot, assignment)
                    node.forks.append((assignment, key))
                    if key not in seen:
                        seen.add(key)
                        stack.append(
                            _Pending(
                                snapshot=snapshot,
                                forces=assignment,
                                parent=None,  # assigned by the replay
                                memo_key=key,
                            )
                        )
            else:
                continue
            batch.retire(lane)
            del lane_node[id(lane)], lane_cycles[id(lane)]
        refill()

    return _assemble_tree(
        nodes,
        machine.netlist.n_nets,
        packing=getattr(evaluator, "program", None),
    )


def _assemble_tree(
    nodes: dict[bytes, _Node], n_nets: int, packing=None
) -> ExecutionTree:
    """Replay the scalar engine's stack discipline over the segment graph.

    Segment content is order-independent (a memo key determines its whole
    future), but segment *numbering*, parents, memo-hit bookkeeping and the
    flat-trace layout all encode the scalar engine's depth-first pop order.
    Replaying that order over the discovered ``{key: node}`` graph makes the
    batched tree bit-identical to the scalar one.
    """
    flat = Trace(n_nets)
    flat.packing = packing
    segments: list[Segment] = []
    index_of: dict[bytes, int] = {}
    patches: list[tuple[int, int, bytes]] = []
    n_memo_hits = 0

    stack: list[tuple[bytes, tuple[int, int] | None]] = [(_ROOT_KEY, None)]
    seen: set[bytes] = {_ROOT_KEY}
    while stack:
        key, parent = stack.pop()
        node = nodes[key]
        segment = Segment(index=len(segments), parent=parent)
        segment.flat_start = len(flat)
        segment.n_cycles = len(node.records)
        segment.end = node.end
        segments.append(segment)
        index_of[key] = segment.index
        flat.records.extend(node.records)
        for assignment, child_key in node.forks:
            fork_no = len(segment.forks)
            segment.forks.append(Fork(assignment, -1))
            patches.append((segment.index, fork_no, child_key))
            if child_key in seen:
                n_memo_hits += 1
            else:
                seen.add(child_key)
                stack.append((child_key, (segment.index, fork_no)))

    for seg_index, fork_no, child_key in patches:
        segments[seg_index].forks[fork_no].target = index_of[child_key]

    tree = ExecutionTree(
        segments=segments, flat_trace=flat, n_memo_hits=n_memo_hits
    )
    _check_resolved(tree)
    return tree


def _check_resolved(tree: ExecutionTree) -> None:
    for segment in tree.segments:
        for fork in segment.forks:
            if fork.target < 0:
                raise AssertionError(
                    f"unresolved fork target in segment {segment.index}"
                )
