"""Input-independent gate activity analysis (Algorithm 1).

Symbolic simulation of the application binary on the processor netlist:
all inputs are X, the machine steps until the *next* program counter value
would contain an X — an input-dependent conditional branch.  The run then
forks: for every concretization of the unknown status flags the branch
reads, a pending path is pushed, keyed by the (state, assignment) pair so
already-simulated paths are never re-simulated (this is what lets
input-dependent loops terminate).

The output is an :class:`ExecutionTree`: a set of trace *segments* linked
by fork edges (including memoized back/cross edges), plus the flattened
concatenated trace that Algorithm 2 consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.asm.program import Program
from repro.sim.trace import Trace


class PathExplosionError(Exception):
    """The execution tree exceeded the configured exploration budget."""


@dataclass
class Fork:
    """One outgoing edge of a segment's terminal branch."""

    #: status-register concretization taken on this edge
    assignment: dict[int, int]
    #: target segment index (resolved after exploration)
    target: int


@dataclass
class Segment:
    """A branch-free stretch of symbolically simulated cycles."""

    index: int
    #: (parent segment index, fork number) — None for the root
    parent: tuple[int, int] | None
    #: slice [start, start + n_cycles) of this segment in the flat trace
    flat_start: int = 0
    n_cycles: int = 0
    #: "halt" or "fork"
    end: str = ""
    forks: list[Fork] = field(default_factory=list)


@dataclass
class ExecutionTree:
    """Algorithm 1's annotated symbolic execution tree."""

    segments: list[Segment]
    flat_trace: Trace
    n_memo_hits: int = 0

    @property
    def n_cycles(self) -> int:
        return len(self.flat_trace)

    def segment_slice(self, segment: Segment) -> slice:
        return slice(segment.flat_start, segment.flat_start + segment.n_cycles)

    def toggled_any(self) -> np.ndarray:
        """Gates that can toggle in *some* execution — Figure 3.4's set."""
        return self.flat_trace.toggled_any()

    def edges(self) -> list[tuple[int, int]]:
        """(from_segment, to_segment) fork edges, memo edges included."""
        pairs = []
        for segment in self.segments:
            pairs.extend((segment.index, fork.target) for fork in segment.forks)
        return pairs

    def is_cyclic(self) -> bool:
        """True when memoization produced a loop (input-dependent loop)."""
        color = {}

        def visit(node: int) -> bool:
            color[node] = 1
            for _src, dst in [
                (node, f.target) for f in self.segments[node].forks
            ]:
                if color.get(dst) == 1:
                    return True
                if color.get(dst, 0) == 0 and visit(dst):
                    return True
            color[node] = 2
            return False

        return visit(0)


@dataclass
class _Pending:
    snapshot: dict
    forces: dict[int, int]
    parent: tuple[int, int] | None
    memo_key: bytes


def _memo_key(machine, snapshot: dict, forces: dict[int, int]) -> bytes:
    """Key = architectural state at the branch + the flag concretization."""
    import hashlib

    from repro.sim.machine import Machine

    h = hashlib.blake2b(digest_size=16)
    h.update(Machine.snapshot_state_key(snapshot, machine.evaluator.dff_out))
    for net in sorted(forces):
        h.update(net.to_bytes(4, "little"))
        h.update(forces[net].to_bytes(1, "little"))
    return h.digest()


def explore(
    cpu,
    program: Program,
    max_cycles: int = 200_000,
    max_segments: int = 4_096,
    max_cycles_per_path: int = 50_000,
) -> ExecutionTree:
    """Run Algorithm 1 for *program* on the gate-level *cpu*.

    Returns the annotated execution tree.  Raises
    :class:`PathExplosionError` when the exploration budget is exceeded and
    :class:`repro.cpu.UnresolvedPCError` when the PC becomes X outside a
    forkable conditional branch.
    """
    machine = cpu.make_machine(program, symbolic_inputs=True)
    flat = Trace(machine.netlist.n_nets)
    segments: list[Segment] = []
    total_cycles = 0

    root = _Pending(
        snapshot=machine.snapshot(), forces={}, parent=None, memo_key=b"root"
    )
    stack: list[_Pending] = [root]
    #: memo_key -> segment index (future segments get patched when popped)
    seen: dict[bytes, int] = {root.memo_key: 0}
    pending_targets: dict[bytes, list[tuple[int, int]]] = {}
    n_memo_hits = 0

    while stack:
        pending = stack.pop()
        if len(segments) >= max_segments:
            raise PathExplosionError(
                f"{program.name}: more than {max_segments} path segments"
            )
        segment = Segment(index=len(segments), parent=pending.parent)
        segment.flat_start = len(flat)
        segments.append(segment)
        seen[pending.memo_key] = segment.index
        for src, fork_no in pending_targets.pop(pending.memo_key, []):
            segments[src].forks[fork_no].target = segment.index

        machine.restore(pending.snapshot)
        machine.next_dff_forces = dict(pending.forces)

        cycles_here = 0
        while True:
            snap_before = machine.snapshot()
            machine.step(trace=flat)
            cycles_here += 1
            total_cycles += 1
            if total_cycles > max_cycles:
                raise PathExplosionError(
                    f"{program.name}: exceeded {max_cycles} total cycles"
                )
            if cycles_here > max_cycles_per_path:
                raise PathExplosionError(
                    f"{program.name}: path exceeded {max_cycles_per_path} cycles"
                )
            if cpu.halted(machine):
                segment.end = "halt"
                break
            if cpu.pc_next_unknown(machine):
                assignments = cpu.branch_fork_assignments(machine)
                # Drop the X-condition dispatch cycle: each child re-executes
                # it with concrete flags, keeping flat cycles 1:1 with real
                # executions (and the peak bound tight).
                flat.records.pop()
                cycles_here -= 1
                total_cycles -= 1
                segment.end = "fork"
                for assignment in assignments:
                    key = _memo_key(machine, snap_before, assignment)
                    fork_no = len(segment.forks)
                    if key in seen:
                        n_memo_hits += 1
                        segment.forks.append(Fork(assignment, seen[key]))
                        if seen[key] == -1:  # queued but not yet simulated
                            pending_targets.setdefault(key, []).append(
                                (segment.index, fork_no)
                            )
                    else:
                        seen[key] = -1
                        segment.forks.append(Fork(assignment, -1))
                        pending_targets.setdefault(key, []).append(
                            (segment.index, fork_no)
                        )
                        stack.append(
                            _Pending(
                                snapshot=snap_before,
                                forces=assignment,
                                parent=(segment.index, fork_no),
                                memo_key=key,
                            )
                        )
                break
        segment.n_cycles = cycles_here

    tree = ExecutionTree(
        segments=segments, flat_trace=flat, n_memo_hits=n_memo_hits
    )
    _check_resolved(tree)
    return tree


def _check_resolved(tree: ExecutionTree) -> None:
    for segment in tree.segments:
        for fork in segment.forks:
            if fork.target < 0:
                raise AssertionError(
                    f"unresolved fork target in segment {segment.index}"
                )
