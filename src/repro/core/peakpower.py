"""Input-independent peak power computation (Algorithm 2).

The symbolic trace contains Xs.  Power in cycle *c* is maximized by
assigning values to the Xs of cycles *c-1* and *c* so that every active
gate makes its most expensive transition into *c*.  Because the assignment
for cycle *c* constrains cycle *c-1*, two assignments are produced — one
maximizing all even cycles, one all odd — exactly as in the paper, and the
final peak power trace takes each cycle's power from the profile that
maximized it.

Execution-tree structure matters here: a segment's first cycle transitions
from its *parent's* last cycle, not from whatever segment happens to
precede it in the flattened trace, so maximization and power evaluation
need an explicit predecessor row per segment.

Two engines implement the algorithm:

* the **stacked** engine (the default) lays every segment out in one
  2-D tensor — a context row holding the predecessor values followed by
  the segment's cycles — so X-assignment covers *all* segments and *all*
  same-parity cycles in one pass per parity, walked in cache-sized
  blocks: each :attr:`~repro.power.model.PowerModel.TRACE_CHUNK_ROWS`
  span of target rows is gathered, X-assigned, and priced before the
  next (targets of one parity are independent, so blocking never changes
  a float).  Context rows act as the segment-validity mask: their power
  values are simply never gathered back.  (The padded
  ``(n_segments, max_len, n_nets)`` formulation would waste
  ``max_len/mean_len`` of the tensor on padding; interleaving context
  rows keeps the stack dense with identical semantics.)
* the **scalar** engine walks segments one at a time with a per-cycle
  Python loop — the original reference, retained for differential tests.

Both produce bit-identical results: same even/odd profiles, same peak
trace, same per-module breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.activity import ExecutionTree
from repro.logic import X
from repro.service import faults
from repro.power.model import PowerModel, PowerTrace
from repro.sim.vcd import write_vcd


@dataclass
class PeakPowerResult:
    """The per-cycle peak power trace and its supporting profiles.

    The even/odd maximized witness profiles — the two full
    ``(n_cycles, n_nets)`` value assignments the paper hands to the power
    tool as VCDs — are **lazy**: peak power itself only needs the priced
    transitions, so the profiles are materialized (and cached) the first
    time ``even_values``/``odd_values`` is read, typically for a VCD dump
    or a soundness check.  Plain analysis runs never allocate them.
    """

    peak_power_mw: float
    peak_cycle: int  # index into the flattened trace
    trace_mw: np.ndarray
    module_mw: dict[str, np.ndarray]
    clock_ns: float
    #: per-segment peak-trace energies (pJ), parallel to ``tree.segments``;
    #: peak-energy analysis consumes these instead of re-slicing the trace.
    segment_energy_pj: np.ndarray | None = None
    #: rebuilds ``(even_values, odd_values)`` on demand
    witness_builder: Callable[[], tuple[np.ndarray, np.ndarray]] | None = (
        field(default=None, repr=False, compare=False)
    )
    _witness_cache: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False, init=False
    )

    def witnesses(self) -> tuple[np.ndarray, np.ndarray]:
        """(even, odd) maximized value profiles, built once on demand."""
        if self._witness_cache is None:
            if self.witness_builder is None:
                raise ValueError(
                    "this PeakPowerResult carries no witness builder"
                )
            self._witness_cache = self.witness_builder()
        return self._witness_cache

    @property
    def even_values(self) -> np.ndarray:
        return self.witnesses()[0]

    @property
    def odd_values(self) -> np.ndarray:
        return self.witnesses()[1]

    def power_trace(self) -> PowerTrace:
        return PowerTrace(
            total_mw=self.trace_mw,
            module_mw=self.module_mw,
            clock_ns=self.clock_ns,
        )


def maximize_parity(
    values: np.ndarray,
    active: np.ndarray,
    parity: int,
    max_prev: np.ndarray,
    max_cur: np.ndarray,
) -> np.ndarray:
    """Assign Xs to maximize switching power in cycles of one parity.

    Implements lines 4-17 of Algorithm 2 for one segment: for every active
    gate in a target cycle, an X pair becomes the cell's max-power
    transition, a single X becomes the value that completes a toggle.  Row
    0 is the predecessor context and is never a target.

    This is the scalar reference; target cycles are independent of each
    other (targets of one parity are two rows apart, and each touches only
    itself and its predecessor row), which is what lets the stacked engine
    process every target of every segment in one shot — see
    :func:`_assign_parity_pairs`.
    """
    assigned = values.copy()
    n_cycles = values.shape[0]
    start = parity if parity >= 1 else 2
    prev_template = np.broadcast_to(max_prev, values.shape[1:])
    cur_template = np.broadcast_to(max_cur, values.shape[1:])
    for cycle in range(start, n_cycles, 2):
        act = active[cycle]
        cur_x = assigned[cycle] == X
        prev_x = assigned[cycle - 1] == X
        both = act & cur_x & prev_x
        assigned[cycle - 1][both] = prev_template[both]
        assigned[cycle][both] = cur_template[both]
        only_cur = act & cur_x & ~prev_x
        assigned[cycle][only_cur] = 1 - assigned[cycle - 1][only_cur]
        only_prev = act & prev_x & ~cur_x
        assigned[cycle - 1][only_prev] = 1 - assigned[cycle][only_prev]
    return assigned


def _assign_parity_pairs(
    stacked: np.ndarray,
    active: np.ndarray,
    target_rows: np.ndarray,
    max_prev: np.ndarray,
    max_cur: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """X-assign one parity's (predecessor, target) row pairs in bulk.

    Returns the assigned ``(prev, cur)`` pair matrices for
    ``target_rows - 1`` / ``target_rows``.  Every target touches only
    itself and its predecessor, and targets of one parity are two rows
    apart, so all pairs — across all segments — resolve in four masked
    in-place copies, no per-cycle Python loop.  ``np.copyto`` rather than
    ``np.where`` chains: the selections are sparse in real traces, and
    copyto streams the mask once instead of materializing blended
    intermediates.
    """
    cur = stacked[target_rows]
    prv = stacked[target_rows - 1]
    act = active[target_rows]
    cur_x = cur == X
    prev_x = prv == X
    both = act & cur_x & prev_x
    only_cur = act & cur_x & ~prev_x
    only_prev = act & prev_x & ~cur_x
    # 1 - v is only selected where v is known 0/1; X lanes wrap harmlessly.
    np.copyto(cur, 1 - prv, where=only_cur)
    np.copyto(prv, 1 - cur, where=only_prev)  # only_prev excludes cur_x, so
    # cur is original there despite the line above (only_cur needs cur_x).
    np.copyto(cur, np.broadcast_to(max_cur, cur.shape), where=both)
    np.copyto(prv, np.broadcast_to(max_prev, prv.shape), where=both)
    return prv, cur


def compute_peak_power(
    tree: ExecutionTree,
    model: PowerModel,
    per_module: bool = True,
    vcd_dir: str | Path | None = None,
    engine: str = "stacked",
    workers: int | None = None,
    cancel=None,
) -> PeakPowerResult:
    """Run Algorithm 2 over an activity-annotated execution tree.

    *engine* selects ``"stacked"`` (vectorized across segments, the
    default) or ``"scalar"`` (the per-segment reference); both produce
    bit-identical results.  *workers* threads the stacked engine's
    transition-energy kernel over row chunks (``None`` honors
    ``REPRO_WORKERS``); chunk results are bit-stable by design, so the
    thread count never changes a float.  *cancel* is an optional
    :class:`repro.parallel.cancel.CancelToken` checked between segment
    chunks (per parity pass in the stacked engine, per segment in the
    scalar one); a set token aborts with
    :class:`repro.parallel.cancel.JobCancelled`.  When *vcd_dir* is
    given, the even- and odd-maximized activity profiles are written as
    ``even.vcd`` / ``odd.vcd``, mirroring the paper's flow of handing
    two VCD files to the power tool.
    """
    from repro.parallel.pool import resolve_workers

    workers = resolve_workers(workers)
    if engine == "stacked":
        return _compute_stacked(
            tree, model, per_module, vcd_dir, workers, cancel=cancel
        )
    if engine == "scalar":
        return _compute_scalar(tree, model, per_module, vcd_dir, cancel=cancel)
    raise ValueError(f"unknown peak-power engine {engine!r}")


def _finish(
    tree: ExecutionTree,
    model: PowerModel,
    peak_trace: np.ndarray,
    module_mw: dict[str, np.ndarray],
    witness_builder,
    vcd_dir: str | Path | None,
    witnesses: tuple[np.ndarray, np.ndarray] | None = None,
) -> PeakPowerResult:
    """Shared tail of both engines: segment sums, VCDs, result object."""
    segment_energy = np.zeros(len(tree.segments))
    for segment in tree.segments:
        if segment.n_cycles:
            sl = tree.segment_slice(segment)
            segment_energy[segment.index] = (
                peak_trace[sl].sum() * model.clock_ns
            )

    n_cycles = peak_trace.shape[0]
    peak_cycle = int(peak_trace.argmax()) if n_cycles else 0
    result = PeakPowerResult(
        peak_power_mw=float(peak_trace.max()) if n_cycles else 0.0,
        peak_cycle=peak_cycle,
        trace_mw=peak_trace,
        module_mw=module_mw,
        clock_ns=model.clock_ns,
        segment_energy_pj=segment_energy,
        witness_builder=witness_builder,
    )
    if witnesses is not None:
        # the engine already assembled the profiles as a byproduct —
        # pre-seed the cache so a VCD request does not recompute them
        result._witness_cache = witnesses

    if vcd_dir is not None:  # the VCD dump is a witness request
        directory = Path(vcd_dir)
        directory.mkdir(parents=True, exist_ok=True)
        write_vcd(
            result.even_values, directory / "even.vcd",
            timescale_ns=model.clock_ns,
        )
        write_vcd(
            result.odd_values, directory / "odd.vcd",
            timescale_ns=model.clock_ns,
        )
    return result


# ----------------------------------------------------------------------
# Stacked engine: all segments, one tensor, one power evaluation per parity.
# ----------------------------------------------------------------------
def _stack_layout(tree: ExecutionTree):
    """Context-interleaved segment stack shared by pricing and witnesses.

    Lays every non-empty segment out as [context row, cycle rows...]; the
    context row carries the predecessor values (the parent's last cycle)
    so the transition into a segment's first cycle is priced correctly.
    Returns ``(stacked, stacked_active, stacked_mem, data_rows,
    local_index)`` where *data_rows* maps flat cycles to stack rows and
    *local_index* is the 1-based row within each segment.
    """
    flat = tree.flat_trace
    values = flat.values_matrix()
    active = flat.active_matrix()
    mem_accesses = flat.mem_accesses()
    n_cycles = len(flat)
    n_nets = values.shape[1]
    live = [s for s in tree.segments if s.n_cycles]
    total_rows = n_cycles + len(live)
    stacked = np.empty((total_rows, n_nets), dtype=values.dtype)
    stacked_active = np.zeros((total_rows, n_nets), dtype=bool)
    stacked_mem = np.zeros((total_rows, 2))
    data_rows = np.empty(n_cycles, dtype=np.int64)  # flat cycle -> stack row
    local_index = np.empty(n_cycles, dtype=np.int64)  # 1-based row in segment
    row = 0
    for segment in live:
        sl = tree.segment_slice(segment)
        if segment.parent is None:
            context = values[sl.start]  # root: no predecessor transition
        else:
            parent = tree.segments[segment.parent[0]]
            context = values[parent.flat_start + parent.n_cycles - 1]
        stacked[row] = context
        block = slice(row + 1, row + 1 + segment.n_cycles)
        stacked[block] = values[sl]
        stacked_active[block] = active[sl]
        stacked_mem[block] = mem_accesses[sl]
        data_rows[sl] = np.arange(block.start, block.stop)
        local_index[sl] = np.arange(1, segment.n_cycles + 1)
        row += 1 + segment.n_cycles
    return stacked, stacked_active, stacked_mem, data_rows, local_index


def _stacked_witnesses(
    tree: ExecutionTree, model: PowerModel
) -> tuple[np.ndarray, np.ndarray]:
    """(even, odd) witness profiles, rebuilt from the tree on demand."""
    stacked, stacked_active, _mem, data_rows, local_index = _stack_layout(tree)
    odd_local = local_index % 2 == 1
    profiles: list[np.ndarray] = []
    for parity_mask in (odd_local, ~odd_local):
        target_rows = data_rows[parity_mask]
        new_prv, new_cur = _assign_parity_pairs(
            stacked, stacked_active, target_rows, model.max_prev, model.max_cur
        )
        # Unmodified rows + this parity's assigned pairs, gathered back to
        # the flat layout.
        assigned = stacked.copy()
        assigned[target_rows] = new_cur
        assigned[target_rows - 1] = new_prv
        profiles.append(assigned[data_rows])
    odd_full, even_full = profiles
    return even_full, odd_full


def _compute_stacked(
    tree: ExecutionTree,
    model: PowerModel,
    per_module: bool,
    vcd_dir: str | Path | None,
    workers: int = 1,
    cancel=None,
) -> PeakPowerResult:
    flat = tree.flat_trace
    n_cycles = len(flat)
    module_names = sorted(model.module_masks) if per_module else []
    if n_cycles == 0:
        empty = np.zeros((0, 0), np.uint8)
        return _finish(
            tree, model, np.zeros(0),
            {name: np.zeros(0) for name in module_names},
            lambda: (empty.copy(), empty.copy()), vcd_dir,
        )
    stacked, stacked_active, stacked_mem, data_rows, local_index = (
        _stack_layout(tree)
    )

    # One maximization + one power evaluation per parity, walked in
    # cache-sized blocks.  Parity 1 targets local rows 1,3,5..., parity 0
    # rows 2,4,...  The peak trace takes cycle c from the profile that
    # targeted c's parity, so each profile is priced only at its own
    # target rows — a parity-indexed scatter replaces the per-cycle
    # choice loop.  Each block gathers, X-assigns, and prices one
    # TRACE_CHUNK_ROWS span of target rows before moving on
    # (:meth:`PowerModel.pair_power` pulls the pairs per chunk): every
    # target touches only itself and its own predecessor row and the
    # assignment writes only into the gathered copies, so blocks are
    # independent — the big Viterbi/PI stacks never materialize the
    # full-parity (targets, n_nets) pair/mask temporaries that made the
    # sweep bandwidth-bound, and the floats are bit-identical because
    # the pricing kernel sees the same rows in the same chunk spans.
    # The full witness profiles are *not* assembled here; the witness
    # builder recomputes them from the tree if anyone asks.
    odd_local = local_index % 2 == 1
    peak_trace = np.empty(n_cycles)
    module_mw = {name: np.empty(n_cycles) for name in module_names}
    profiles: list[np.ndarray] = []
    for parity_mask in (odd_local, ~odd_local):
        if cancel is not None:
            cancel.check()
        faults.hit("peakpower.segment")
        target_rows = data_rows[parity_mask]

        def pairs(start: int, stop: int):
            return _assign_parity_pairs(
                stacked, stacked_active, target_rows[start:stop],
                model.max_prev, model.max_cur,
            )

        power = model.pair_power(
            pairs,
            len(target_rows),
            stacked_mem[target_rows],
            per_module=per_module,
            workers=workers,
        )
        peak_trace[parity_mask] = power.total_mw
        for name in module_names:
            module_mw[name][parity_mask] = power.module_mw[name]
        if vcd_dir is not None:
            # a VCD dump will need the witnesses immediately: assemble
            # them from freshly computed full-parity pairs instead of
            # re-deriving the whole layout later
            new_prv, new_cur = _assign_parity_pairs(
                stacked, stacked_active, target_rows,
                model.max_prev, model.max_cur,
            )
            assigned = stacked.copy()
            assigned[target_rows] = new_cur
            assigned[target_rows - 1] = new_prv
            profiles.append(assigned[data_rows])

    witnesses = None
    if vcd_dir is not None:
        odd_full, even_full = profiles
        witnesses = (even_full, odd_full)
    return _finish(
        tree, model, peak_trace, module_mw,
        lambda: _stacked_witnesses(tree, model), vcd_dir, witnesses,
    )


# ----------------------------------------------------------------------
# Scalar engine: one segment at a time (the original reference).
# ----------------------------------------------------------------------
def _segment_profiles(tree, model, segment, values, active):
    """One segment's [context + cycles] inputs and its two maximized
    profiles, local parity 1 (odd rows) first.  *values*/*active* are the
    flat trace matrices, computed once by the caller."""
    n_nets = values.shape[1]
    sl = tree.segment_slice(segment)
    if segment.parent is None:
        context = values[sl.start]  # root: no predecessor transition
    else:
        parent = tree.segments[segment.parent[0]]
        context = values[parent.flat_start + parent.n_cycles - 1]
    seg_values = np.vstack([context[None, :], values[sl]])
    seg_active = np.vstack([np.zeros((1, n_nets), dtype=bool), active[sl]])
    profiles = [
        maximize_parity(
            seg_values, seg_active, parity, model.max_prev, model.max_cur
        )
        for parity in (1, 0)  # local rows 1,3,5... and 2,4,6...
    ]
    return sl, profiles


def _scalar_witnesses(
    tree: ExecutionTree, model: PowerModel
) -> tuple[np.ndarray, np.ndarray]:
    """(even, odd) witness profiles via the per-segment reference path."""
    flat = tree.flat_trace
    values = flat.values_matrix() if len(flat) else np.zeros((0, 0), np.uint8)
    active = flat.active_matrix() if len(flat) else np.zeros((0, 0), bool)
    even_full = values.copy()
    odd_full = values.copy()
    for segment in tree.segments:
        if segment.n_cycles == 0:
            continue
        sl, profiles = _segment_profiles(tree, model, segment, values, active)
        even_full[sl] = profiles[1][1:]
        odd_full[sl] = profiles[0][1:]
    return even_full, odd_full


def _compute_scalar(
    tree: ExecutionTree,
    model: PowerModel,
    per_module: bool,
    vcd_dir: str | Path | None,
    cancel=None,
) -> PeakPowerResult:
    flat = tree.flat_trace
    values = flat.values_matrix() if len(flat) else np.zeros((0, 0), np.uint8)
    active = flat.active_matrix() if len(flat) else np.zeros((0, 0), bool)
    mem_accesses = flat.mem_accesses()
    n_cycles = len(flat)

    peak_trace = np.zeros(n_cycles)
    module_names = sorted(model.module_masks) if per_module else []
    module_mw = {name: np.zeros(n_cycles) for name in module_names}

    for segment in tree.segments:
        if cancel is not None:
            cancel.check()
        faults.hit("peakpower.segment")
        if segment.n_cycles == 0:
            continue
        sl, profiles = _segment_profiles(tree, model, segment, values, active)
        seg_mem = np.vstack([[0.0, 0.0], mem_accesses[sl]])
        powers = [
            model.trace_power(profile, seg_mem, per_module=per_module)
            for profile in profiles
        ]
        # Local row i (1-based data row) was maximized by profiles[(i+1)%2]:
        # profile 0 targets odd local rows, profile 1 targets even ones.
        for local in range(1, segment.n_cycles + 1):
            choice = powers[(local + 1) % 2]
            flat_index = sl.start + local - 1
            peak_trace[flat_index] = choice.total_mw[local]
            for name in module_names:
                module_mw[name][flat_index] = choice.module_mw[name][local]

    return _finish(
        tree, model, peak_trace, module_mw,
        lambda: _scalar_witnesses(tree, model), vcd_dir,
    )
