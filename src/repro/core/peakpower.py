"""Input-independent peak power computation (Algorithm 2).

The symbolic trace contains Xs.  Power in cycle *c* is maximized by
assigning values to the Xs of cycles *c-1* and *c* so that every active
gate makes its most expensive transition into *c*.  Because the assignment
for cycle *c* constrains cycle *c-1*, two assignments are produced — one
maximizing all even cycles, one all odd — exactly as in the paper, and the
final peak power trace takes each cycle's power from the profile that
maximized it.

Execution-tree structure matters here: a segment's first cycle transitions
from its *parent's* last cycle, not from whatever segment happens to
precede it in the flattened trace, so maximization and power evaluation
run per segment with an explicit predecessor row.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.activity import ExecutionTree
from repro.logic import X
from repro.power.model import PowerModel, PowerTrace
from repro.sim.vcd import write_vcd


@dataclass
class PeakPowerResult:
    """The per-cycle peak power trace and its supporting profiles."""

    peak_power_mw: float
    peak_cycle: int  # index into the flattened trace
    trace_mw: np.ndarray
    module_mw: dict[str, np.ndarray]
    even_values: np.ndarray
    odd_values: np.ndarray
    clock_ns: float

    def power_trace(self) -> PowerTrace:
        return PowerTrace(
            total_mw=self.trace_mw,
            module_mw=self.module_mw,
            clock_ns=self.clock_ns,
        )


def maximize_parity(
    values: np.ndarray,
    active: np.ndarray,
    parity: int,
    max_prev: np.ndarray,
    max_cur: np.ndarray,
) -> np.ndarray:
    """Assign Xs to maximize switching power in cycles of one parity.

    Implements lines 4-17 of Algorithm 2: for every active gate in a target
    cycle, an X pair becomes the cell's max-power transition, a single X
    becomes the value that completes a toggle.  Row 0 is the predecessor
    context and is never a target.
    """
    assigned = values.copy()
    n_cycles = values.shape[0]
    start = parity if parity >= 1 else 2
    prev_template = np.broadcast_to(max_prev, values.shape[1:])
    cur_template = np.broadcast_to(max_cur, values.shape[1:])
    for cycle in range(start, n_cycles, 2):
        act = active[cycle]
        cur_x = assigned[cycle] == X
        prev_x = assigned[cycle - 1] == X
        both = act & cur_x & prev_x
        assigned[cycle - 1][both] = prev_template[both]
        assigned[cycle][both] = cur_template[both]
        only_cur = act & cur_x & ~prev_x
        assigned[cycle][only_cur] = 1 - assigned[cycle - 1][only_cur]
        only_prev = act & prev_x & ~cur_x
        assigned[cycle - 1][only_prev] = 1 - assigned[cycle][only_prev]
    return assigned


def compute_peak_power(
    tree: ExecutionTree,
    model: PowerModel,
    per_module: bool = True,
    vcd_dir: str | Path | None = None,
) -> PeakPowerResult:
    """Run Algorithm 2 over an activity-annotated execution tree.

    When *vcd_dir* is given, the even- and odd-maximized activity profiles
    are written as ``even.vcd`` / ``odd.vcd``, mirroring the paper's flow
    of handing two VCD files to the power tool.
    """
    flat = tree.flat_trace
    values = flat.values_matrix()
    active = flat.active_matrix()
    mem_accesses = flat.mem_accesses()
    n_cycles, n_nets = values.shape

    peak_trace = np.zeros(n_cycles)
    module_names = sorted(model.module_masks) if per_module else []
    module_mw = {name: np.zeros(n_cycles) for name in module_names}
    even_full = values.copy()
    odd_full = values.copy()

    for segment in tree.segments:
        if segment.n_cycles == 0:
            continue
        sl = tree.segment_slice(segment)
        if segment.parent is None:
            context = values[sl.start]  # root: no predecessor transition
        else:
            parent = tree.segments[segment.parent[0]]
            context = values[parent.flat_start + parent.n_cycles - 1]
        seg_values = np.vstack([context[None, :], values[sl]])
        seg_active = np.vstack(
            [np.zeros((1, n_nets), dtype=bool), active[sl]]
        )
        seg_mem = np.vstack([[0.0, 0.0], mem_accesses[sl]])

        profiles = [
            maximize_parity(
                seg_values, seg_active, parity, model.max_prev, model.max_cur
            )
            for parity in (1, 0)  # local rows 1,3,5... and 2,4,6...
        ]
        powers = [
            model.trace_power(profile, seg_mem, per_module=per_module)
            for profile in profiles
        ]
        # Local row i (1-based data row) was maximized by profiles[(i+1)%2]:
        # profile 0 targets odd local rows, profile 1 targets even ones.
        for local in range(1, segment.n_cycles + 1):
            choice = powers[(local + 1) % 2]
            flat_index = sl.start + local - 1
            peak_trace[flat_index] = choice.total_mw[local]
            for name in module_names:
                module_mw[name][flat_index] = choice.module_mw[name][local]
        even_full[sl] = profiles[1][1:]
        odd_full[sl] = profiles[0][1:]

    if vcd_dir is not None:
        directory = Path(vcd_dir)
        directory.mkdir(parents=True, exist_ok=True)
        write_vcd(even_full, directory / "even.vcd", timescale_ns=model.clock_ns)
        write_vcd(odd_full, directory / "odd.vcd", timescale_ns=model.clock_ns)

    peak_cycle = int(peak_trace.argmax()) if n_cycles else 0
    return PeakPowerResult(
        peak_power_mw=float(peak_trace.max()) if n_cycles else 0.0,
        peak_cycle=peak_cycle,
        trace_mw=peak_trace,
        module_mw=module_mw,
        even_values=even_full,
        odd_values=odd_full,
        clock_ns=model.clock_ns,
    )
