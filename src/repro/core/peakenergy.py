"""Input-independent peak energy (§3.3).

Peak energy is bounded by the execution path with the highest sum of
per-cycle peak power times the clock period.  Paths are enumerated on the
execution tree by dynamic programming: at an input-dependent branch the
higher-energy arm is taken; memoized cross-edges make the graph a DAG for
bounded programs, and genuinely input-dependent loops (cycles in the
segment graph) are handled with a user-supplied iteration bound, as the
paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


from repro.core.activity import ExecutionTree
from repro.core.peakpower import PeakPowerResult


class UnboundedEnergyError(Exception):
    """The segment graph is cyclic and no loop bound was provided."""


@dataclass
class PeakEnergyResult:
    """Peak energy of the worst-case path through the application."""

    peak_energy_pj: float
    path_cycles: int
    path_segments: list[int]
    clock_ns: float

    @property
    def normalized_peak_energy_pj_per_cycle(self) -> float:
        """The paper's NPE metric: peak energy / runtime in cycles."""
        if self.path_cycles == 0:
            return 0.0
        return self.peak_energy_pj / self.path_cycles


def _segment_energies_pj(
    tree: ExecutionTree, peak: PeakPowerResult
) -> list[float]:
    """Per-segment peak-trace energies.

    Algorithm 2 already sums each segment while scattering its results
    back (``PeakPowerResult.segment_energy_pj``); re-slicing the flat
    trace is only the fallback for hand-built result objects.
    """
    if peak.segment_energy_pj is not None:
        return [float(e) for e in peak.segment_energy_pj]
    energies = []
    for segment in tree.segments:
        sl = tree.segment_slice(segment)
        energies.append(float(peak.trace_mw[sl].sum() * peak.clock_ns))
    return energies


def compute_peak_energy(
    tree: ExecutionTree,
    peak: PeakPowerResult,
    loop_bound: int | None = None,
) -> PeakEnergyResult:
    """Bound the peak energy of the application.

    *loop_bound* is only consulted when the execution tree contains cycles
    (an input-dependent loop whose state repeats): each segment may then be
    visited at most ``loop_bound`` times along a path.
    """
    energies = _segment_energies_pj(tree, peak)
    if not tree.is_cyclic():
        return _acyclic_best(tree, peak, energies)
    if loop_bound is None:
        raise UnboundedEnergyError(
            "execution tree has an input-dependent loop; supply loop_bound "
            "(from static analysis or domain knowledge, per §3.3)"
        )
    return _bounded_best(tree, peak, energies, loop_bound)


def _acyclic_best(
    tree: ExecutionTree, peak: PeakPowerResult, energies: list[float]
) -> PeakEnergyResult:
    @lru_cache(maxsize=None)
    def best(index: int) -> tuple[float, int, tuple[int, ...]]:
        segment = tree.segments[index]
        own = (energies[index], segment.n_cycles, (index,))
        if segment.end == "halt" or not segment.forks:
            return own
        tails = [best(fork.target) for fork in segment.forks]
        energy, cycles, path = max(tails, key=lambda t: t[0])
        return (own[0] + energy, own[1] + cycles, own[2] + path)

    energy, cycles, path = best(0)
    return PeakEnergyResult(
        peak_energy_pj=energy,
        path_cycles=cycles,
        path_segments=list(path),
        clock_ns=peak.clock_ns,
    )


def _bounded_best(
    tree: ExecutionTree,
    peak: PeakPowerResult,
    energies: list[float],
    loop_bound: int,
) -> PeakEnergyResult:
    """Longest-path DP with at most ``loop_bound * n_segments`` hops."""
    n = len(tree.segments)
    max_hops = loop_bound * n
    neg = float("-inf")
    # dp[s] = (energy, cycles, path) of the best halt-terminated path of
    # exactly k segments starting at s; iterate k upward.
    halting = [
        (energies[s], tree.segments[s].n_cycles, (s,))
        if tree.segments[s].end == "halt" or not tree.segments[s].forks
        else (neg, 0, ())
        for s in range(n)
    ]
    # previous[s] = best halt-terminated path from s using <= k segments.
    previous = list(halting)
    for _hop in range(max_hops):
        current = list(halting)
        for s in range(n):
            for fork in tree.segments[s].forks:
                tail = previous[fork.target]
                if tail[0] == neg:
                    continue
                total = (
                    energies[s] + tail[0],
                    tree.segments[s].n_cycles + tail[1],
                    (s,) + tail[2],
                )
                if total[0] > current[s][0]:
                    current[s] = total
        if current == previous:
            break
        previous = current
    energy, cycles, path = previous[0]
    if energy == neg:
        raise UnboundedEnergyError("no halt-terminated path found")
    return PeakEnergyResult(
        peak_energy_pj=energy,
        path_cycles=cycles,
        path_segments=list(path),
        clock_ns=peak.clock_ns,
    )


def worst_case_average_power_mw(result: PeakEnergyResult) -> float:
    """Peak energy expressed as average power over the worst path."""
    if result.path_cycles == 0:
        return 0.0
    return result.peak_energy_pj / (result.path_cycles * result.clock_ns)
