"""One-call analysis pipeline.

``analyze(cpu, program, model)`` runs the full technique of the paper —
Algorithm 1 activity analysis, Algorithm 2 peak power, §3.3 peak energy —
and returns a single report object the examples and benchmarks consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.core.activity import ExecutionTree, explore
from repro.core.peakenergy import PeakEnergyResult, compute_peak_energy
from repro.core.peakpower import PeakPowerResult, compute_peak_power
from repro.power.model import PowerModel


@dataclass
class AnalysisReport:
    """Application-specific, input-independent requirements (the output
    of Figure 3.1's flow)."""

    program_name: str
    tree: ExecutionTree
    peak_power: PeakPowerResult
    peak_energy: PeakEnergyResult

    @property
    def peak_power_mw(self) -> float:
        return self.peak_power.peak_power_mw

    @property
    def peak_energy_pj(self) -> float:
        return self.peak_energy.peak_energy_pj

    @property
    def npe_pj_per_cycle(self) -> float:
        """Normalized peak energy (J/cycle, here pJ/cycle) — Fig 5.2's metric."""
        return self.peak_energy.normalized_peak_energy_pj_per_cycle

    def summary(self) -> str:
        return (
            f"{self.program_name}: peak power "
            f"{self.peak_power_mw:.3f} mW, peak energy "
            f"{self.peak_energy_pj:.1f} pJ over {self.peak_energy.path_cycles} "
            f"cycles (NPE {self.npe_pj_per_cycle:.3f} pJ/cycle), "
            f"{len(self.tree.segments)} path segments"
        )

    def to_payload(self) -> dict:
        """JSON-serializable requirements summary of this full report.

        Floats round-trip through JSON bit-exactly, so serialized
        answers compare equal to a direct :func:`analyze` call.  (The
        analysis service's benchmark jobs return the slimmer
        store-backed schema built in
        :func:`repro.service.scheduler._analysis_payload`; this is the
        full-report view for custom programs and scripting.)"""
        return {
            "program": self.program_name,
            "peak_power_mw": self.peak_power_mw,
            "peak_energy_pj": self.peak_energy_pj,
            "npe_pj_per_cycle": self.npe_pj_per_cycle,
            "peak_cycle": int(self.peak_power.peak_cycle),
            "path_cycles": int(self.peak_energy.path_cycles),
            "n_segments": len(self.tree.segments),
            "n_cycles": int(self.tree.n_cycles),
        }


def analyze(
    cpu,
    program: Program,
    model: PowerModel,
    loop_bound: int | None = None,
    max_cycles: int = 200_000,
    max_segments: int = 4_096,
    vcd_dir=None,
    batch_size: int | None = None,
    engine: str | None = None,
    workers: int | None = None,
    cancel=None,
) -> AnalysisReport:
    """Full input-independent peak power and energy analysis.

    *batch_size* selects the exploration scheduling (see
    :func:`repro.core.activity.explore`): ``1`` forces one path at a
    time, larger values settle that many execution paths in lock-step.
    *engine* selects the simulation representation — ``"bitplane"``
    (packed dual-rail, the default), ``"native"`` (the compiled
    per-netlist C kernel, bitplane fallback when no compiler), or
    ``"reference"`` (the uint8 oracle); ``None`` honors
    ``REPRO_ENGINE``.  *workers* spreads one
    benchmark's analysis over that many cores: exploration shards its
    pending-path queue across worker processes and the Algorithm 2
    kernel threads its row chunks (``None`` honors ``REPRO_WORKERS``,
    ``0`` means one per core).  All combinations are bit-identical.
    *cancel* (a :class:`repro.parallel.cancel.CancelToken`) threads
    through both algorithms' inner loops; a set token aborts with
    :class:`repro.parallel.cancel.JobCancelled` without changing any
    result that would have been produced.
    """
    from repro.parallel.pool import resolve_workers

    workers = resolve_workers(workers)
    tree = explore(
        cpu,
        program,
        max_cycles=max_cycles,
        max_segments=max_segments,
        batch_size=batch_size,
        engine=engine,
        workers=workers,
        cancel=cancel,
    )
    peak_power = compute_peak_power(
        tree, model, vcd_dir=vcd_dir, workers=workers, cancel=cancel
    )
    peak_energy = compute_peak_energy(tree, peak_power, loop_bound=loop_bound)
    return AnalysisReport(
        program_name=program.name,
        tree=tree,
        peak_power=peak_power,
        peak_energy=peak_energy,
    )
