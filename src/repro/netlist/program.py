"""Compile a levelized netlist into a fused bit-plane schedule.

The bit-plane engine (:mod:`repro.sim.bitplane`) stores the 3-valued
simulation state as **dual-rail uint64 bit planes**: for every net, a
``P`` bit ("the net can be 1") and an ``N`` bit ("the net can be 0"),

    0 -> (P=0, N=1)    1 -> (P=1, N=0)    X -> (P=1, N=1)

plus an ``A`` plane holding the paper's per-net activity flag.  Under this
encoding the Kleene gate functions become plain word-wide boolean algebra:

    AND:  p = pa & pb            OR:   p = pa | pb
          n = na | nb                  n = na & nb
    NOT:  swap the rails (a compile-time wire crossing, zero runtime ops)
    XOR:  p = (pa & nb) | (na & pb),  n = (pa & pb) | (na & nb)
    MUX:  p = (ns & pa) | (ps & pb),  n = (ns & na) | (ps & nb)

so one ``&``/``|`` processes 64 nets at a time, and every inverting gate
(NAND/NOR/NOT, and OR via De Morgan) costs nothing: its inversions fold
into *which rail* each input slot reads and *which rail* the result is
stored to.

This module is the compile step.  It renumbers the nets into a **packed
bit order** — sources first, then each level's gates grouped into
word-aligned opcode runs — and precomputes, per level, one fused gather
table (byte indices + bit masks into the raw plane bytes) that fetches
every input bit of every gate of the level, for both rails *and* for the
activity sweep, in a single fancy-indexing call.  The runtime then packs
the gathered bits with ``np.packbits`` and executes a handful of whole-run
``&``/``|``/``^`` ops per level.  What used to be ~4 numpy dispatches per
(level, kind) group becomes ~30 dispatches per *level* over uint64 words.

Bit position 0 is a reserved constant-zero bit (P=0, N=1, A=0 always);
all padding slots point at it so the pad bits of every run settle to a
deterministic known 0 and never contribute activity.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

import numpy as np

from repro.netlist.core import Netlist

#: plane indices within the ``(..., 3, n_words)`` state array
P_PLANE, N_PLANE, A_PLANE = 0, 1, 2

#: opcode-run classes, in their fixed within-level layout order.  ``copy``
#: moves one gathered rail pair straight to the output rails (BUF/NOT:
#: the inversion folds into which rails the two slots read); ``and``
#: computes ``p = pa & pb, n = na | nb``; ``and_swap`` the same with the
#: result rails exchanged (the free output inversion); ``xor``/``xor_swap``
#: the Kleene XOR and its complement; ``mux`` the optimistic-X 2:1 mux.
#: ``mux`` must stay last: the activity sweep addresses the select-line
#: block by the level tail.
RUN_ORDER = ("copy", "and", "and_swap", "xor", "xor_swap", "mux")

#: gate kind -> (run class, invert input rails?)
KIND_CLASS = {
    "AND": ("and", False),
    "BUF": ("copy", False),
    "NOR": ("and", True),  # AND(~a, ~b)
    "OR": ("and_swap", True),  # ~AND(~a, ~b)
    "NOT": ("copy", True),  # rail swap
    "NAND": ("and_swap", False),  # ~AND(a, b)
    "XOR": ("xor", False),
    "XNOR": ("xor_swap", False),
    "MUX": ("mux", False),
}

#: kinds whose output is a (possibly inverted) copy of their single input;
#: reads *through* them are retargeted at their chain root
_CHAIN_KINDS = ("BUF", "NOT")


def _pad64(bits: int) -> int:
    return -(-bits // 64) * 64


@dataclass
class Run:
    """One word-aligned opcode run inside a level."""

    cls: str
    n_gates: int
    #: word offset of the run's outputs inside the level's result block
    res_word: int
    words: int
    #: word offsets of the run's input blocks inside the level scratch
    #: (``and*``/``xor*``: PA, NA, PB, NB; ``mux``: SN, SP, PA, PB, NA, NB)
    slot_words: tuple[int, ...] = ()


@dataclass
class LevelPlan:
    """Everything the executor needs for one level of the schedule."""

    #: output word range [word0, word0 + words) in each plane
    word0: int
    words: int
    runs: list[Run] = field(default_factory=list)
    #: fused gather table: byte index into the raw (3 * n_words * 8)-byte
    #: state row + the bit to test, one entry per scratch slot
    gather_bytes: np.ndarray | None = None
    gather_masks: np.ndarray | None = None
    scratch_words: int = 0
    #: word offsets of the two activity-input blocks (each ``words`` wide)
    act0_word: int = 0
    act1_word: int = 0
    #: mux third-input activity block (``mux_words`` wide) or None
    act2_word: int | None = None
    mux_words: int = 0


class NetlistProgram:
    """A netlist compiled into packed bit positions + a fused schedule.

    One program instance is immutable and shared by every
    :class:`~repro.sim.bitplane.BitplaneEvaluator` (and hence every
    machine) built for the same netlist.
    """

    def __init__(self, netlist: Netlist):
        if sys.byteorder != "little":  # pragma: no cover - x86/arm are LE
            raise RuntimeError("bit-plane engine requires a little-endian host")
        self.netlist = netlist
        self.n_nets = netlist.n_nets
        levels = netlist.levelize()
        self.depth = len(levels)

        # ------------------------------------------------------------------
        # BUF/NOT chain collapse.  A chain element's settled planes are an
        # exact rail permutation of its chain root's (BUF keeps, NOT swaps),
        # and its activity flag equals the root's (A(elem) = changed(elem)
        # | (is_x(elem) & A(src)); changed/is_x are rail-swap invariant and
        # A(src) already contains changed(src), so the recurrence telescopes
        # to A(root)).  Every *read* of a chain element — gate inputs, mux
        # selects, DFF D pins, activity slots — therefore retargets at the
        # root with a parity-selected rail, shortening the gather's
        # dependency chains; the elements themselves still settle (traces
        # expose every net) but shrink to two-slot ``copy`` runs.
        # ------------------------------------------------------------------
        self.chain_of: dict[int, tuple[int, int]] = {}
        for gate in netlist.gates:
            if gate.kind in _CHAIN_KINDS:
                self._resolve_chain(gate.index)

        # ------------------------------------------------------------------
        # Packed bit positions: [zero bit | inputs | consts | pad | DFFs |
        # pad] then per level one word-aligned block per opcode run.
        # ------------------------------------------------------------------
        pos_of = np.full(self.n_nets, -1, dtype=np.int64)
        cursor = 1  # bit 0 is the reserved constant-zero bit
        self.input_positions: list[int] = []
        for gate in netlist.gates:
            if gate.kind == "INPUT":
                pos_of[gate.index] = cursor
                self.input_positions.append(cursor)
                cursor += 1
        const0 = [g.index for g in netlist.gates if g.kind == "CONST0"]
        const1 = [g.index for g in netlist.gates if g.kind == "CONST1"]
        self.const0_positions: list[int] = []
        self.const1_positions: list[int] = []
        for index in const0:
            pos_of[index] = cursor
            self.const0_positions.append(cursor)
            cursor += 1
        for index in const1:
            pos_of[index] = cursor
            self.const1_positions.append(cursor)
            cursor += 1
        cursor = _pad64(cursor)

        self.dff_word0 = cursor // 64
        dffs = netlist.dff_indices()
        for index in dffs:
            pos_of[index] = cursor
            cursor += 1
        cursor = _pad64(cursor)
        self.dff_words = cursor // 64 - self.dff_word0
        self.src_words = cursor // 64

        #: per-level run membership, gates in netlist-index order
        level_runs: list[dict[str, list[int]]] = []
        for level_gates in levels:
            by_cls: dict[str, list[int]] = {}
            for index in sorted(level_gates):
                cls, _inv = KIND_CLASS[netlist.gates[index].kind]
                by_cls.setdefault(cls, []).append(index)
            level_runs.append(by_cls)

        self.levels: list[LevelPlan] = []
        for by_cls in level_runs:
            word0 = cursor // 64
            plan = LevelPlan(word0=word0, words=0)
            for cls in RUN_ORDER:
                gates = by_cls.get(cls)
                if not gates:
                    continue
                run = Run(
                    cls=cls,
                    n_gates=len(gates),
                    res_word=cursor // 64 - word0,
                    words=_pad64(len(gates)) // 64,
                )
                for slot, index in enumerate(gates):
                    pos_of[index] = cursor + slot
                cursor += run.words * 64
                plan.runs.append(run)
                if cls == "mux":
                    plan.mux_words = run.words
            plan.words = cursor // 64 - word0
            self.levels.append(plan)

        self.n_bits = cursor
        self.n_words = cursor // 64
        self.pos_of = pos_of
        assert (pos_of >= 0).all(), "every net must receive a bit position"

        #: uint64 mask words with 1s at real-net bit positions (pads and
        #: the zero bit excluded) — for popcounts over whole planes
        valid = np.zeros(self.n_bits, dtype=np.uint8)
        valid[pos_of] = 1
        self.valid_mask = np.packbits(valid, bitorder="little").view(np.uint64)

        #: INPUT-positions mask over the source words (the paper's
        #: "external inputs are active whenever X" rule)
        in_bits = np.zeros(self.src_words * 64, dtype=np.uint8)
        in_bits[self.input_positions] = 1
        self.input_mask = np.packbits(in_bits, bitorder="little").view(np.uint64)

        # ------------------------------------------------------------------
        # Per-level fused gather tables
        # ------------------------------------------------------------------
        for plan, by_cls in zip(self.levels, level_runs):
            self._build_level_gather(plan, by_cls)

        # ------------------------------------------------------------------
        # DFF schedule: next-value gather (P and N of every D input) and
        # previous-activity gather (A of every D input), plus reset words.
        # ------------------------------------------------------------------
        self.dff_out = np.array(dffs, dtype=np.int64)
        self.dff_d = np.array(
            [netlist.gates[i].inputs[0] for i in dffs], dtype=np.int64
        )
        self.dff_reset = np.array(
            [netlist.gates[i].reset_value for i in dffs], dtype=np.uint8
        )
        self.dff_bit_of = {
            int(net): pos for pos, net in enumerate(self.dff_out)
        }
        # Both DFF gathers read the *raw* D net, not its chain root: they
        # run against caller-supplied planes (next_dff_planes accepts any
        # packed state; the stored A plane may be any vector), so the
        # settled-chain identities that license retargeting within one
        # settle do not apply to them.
        d_slots: list[tuple[int, int]] = []  # (plane, bit position)
        for rail in (P_PLANE, N_PLANE):
            for j in range(self.dff_words * 64):
                if j < len(dffs):
                    d_slots.append((rail, pos_of[self.dff_d[j]]))
                else:  # pad: P(zero)=0, N(zero)=1 -> pad DFFs settle to 0
                    d_slots.append((rail, 0))
        self.dff_gather_bytes, self.dff_gather_masks = self._slot_table(d_slots)
        a_slots = [
            (A_PLANE, pos_of[self.dff_d[j]] if j < len(dffs) else 0)
            for j in range(self.dff_words * 64)
        ]
        self.dff_act_bytes, self.dff_act_masks = self._slot_table(a_slots)

        reset_bits = np.zeros((2, self.dff_words * 64), dtype=np.uint8)
        reset_bits[P_PLANE, : len(dffs)] = self.dff_reset
        reset_bits[N_PLANE, : len(dffs)] = 1 - self.dff_reset
        reset_bits[N_PLANE, len(dffs) :] = 1  # pads are known 0
        self.dff_reset_words = np.packbits(
            reset_bits, axis=-1, bitorder="little"
        ).view(np.uint64)

        #: compatibility index arrays (mirroring LevelizedEvaluator)
        self.input_nets = np.array(
            [g.index for g in netlist.gates if g.kind == "INPUT"], dtype=np.int64
        )
        self.const0_nets = np.array(const0, dtype=np.int64)
        self.const1_nets = np.array(const1, dtype=np.int64)

        self.max_scratch_words = max(
            (plan.scratch_words for plan in self.levels), default=0
        )
        self.max_level_words = max(
            (plan.words for plan in self.levels), default=0
        )
        self.max_run_words = max(
            (run.words for plan in self.levels for run in plan.runs),
            default=0,
        )

    # ------------------------------------------------------------------
    # Gather-table construction
    # ------------------------------------------------------------------
    def _slot_table(
        self, slots: list[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(byte index, bit mask) arrays for (plane, bit position) slots."""
        plane_bytes = self.n_words * 8
        bytes_ = np.array(
            [plane * plane_bytes + (pos >> 3) for plane, pos in slots],
            dtype=np.intp,
        )
        masks = np.array(
            [1 << (pos & 7) for _plane, pos in slots], dtype=np.uint8
        )
        return bytes_, masks

    def _resolve_chain(self, net: int) -> tuple[int, int]:
        """(chain root net, rail parity) for *net*, memoized.

        The root is the first driver up the BUF/NOT chain that is not
        itself a chain element; parity counts the NOTs passed (odd = the
        element's P rail lives on the root's N rail and vice versa).
        Non-chain nets are their own root with even parity.
        """
        path: list[int] = []
        while net not in self.chain_of:
            gate = self.netlist.gates[net]
            if gate.kind not in _CHAIN_KINDS:
                self.chain_of[net] = (net, 0)
                break
            path.append(net)
            net = gate.inputs[0]
        root, parity = self.chain_of[net]
        for elem in reversed(path):
            parity ^= int(self.netlist.gates[elem].kind == "NOT")
            self.chain_of[elem] = (root, parity)
        return self.chain_of[path[0] if path else net]

    def _read_rails(self, net: int) -> tuple[int, int, int]:
        """(P-rail plane, N-rail plane, bit position) to read *net* from,
        chain collapse applied."""
        root, parity = self.chain_of.get(net, (net, 0))
        if parity:
            return N_PLANE, P_PLANE, int(self.pos_of[root])
        return P_PLANE, N_PLANE, int(self.pos_of[root])

    def _gate_eval_slots(self, index: int) -> list[tuple[int, int]]:
        """Input slot sources for one gate, rail folding applied.

        Returns (plane, bit) pairs in the run's block order: SRC_P,
        SRC_N for ``copy``, PA, NA, PB, NB for the two-input classes,
        SP, SN, PA, NA, PB, NB for muxes.  The PA/NA names refer to the
        *operand rails the run's formula reads*; an inverting kind (or
        an odd chain parity on the way to the operand's root) simply
        wires them to the other rail.
        """
        gate = self.netlist.gates[index]
        _cls, invert_inputs = KIND_CLASS[gate.kind]
        ins = gate.inputs
        if gate.kind in _CHAIN_KINDS:
            sp, sn, pos = self._read_rails(ins[0])
            if invert_inputs:  # NOT: output = rail swap of the source
                sp, sn = sn, sp
            return [(sp, pos), (sn, pos)]
        if gate.kind == "MUX":
            # Block order SN, SP, PA, PB, NA, NB: the executor computes
            # both select products of one rail with a single double-width
            # AND over the adjacent (SN|SP) and (PA|PB) / (NA|NB) blocks.
            sel, a, b = ins
            sp, sn, s = self._read_rails(sel)
            pa_r, na_r, pa = self._read_rails(a)
            pb_r, nb_r, pb = self._read_rails(b)
            return [
                (sn, s), (sp, s),
                (pa_r, pa), (pb_r, pb),
                (na_r, pa), (nb_r, pb),
            ]
        a, b = ins
        pa_r, na_r, pa = self._read_rails(a)
        pb_r, nb_r, pb = self._read_rails(b)
        if invert_inputs:
            pa_r, na_r = na_r, pa_r
            pb_r, nb_r = nb_r, pb_r
        return [
            (pa_r, pa), (na_r, pa),
            (pb_r, pb), (nb_r, pb),
        ]

    #: pad slot sources per class, chosen so a pad output settles to a
    #: known 0 under the class's formula.  (P, 0) reads the zero bit's P
    #: rail (constant 0); (N, 0) reads its N rail (constant 1):
    #:
    #:   and:      p = 0 & 0 = 0, n = 1 | 1 = 1
    #:   and_swap: p = NA|NB = 0|0 = 0, n = PA&PB = 1&1 = 1
    #:   xor:      PA=1, NA=0, PB=1, NB=0 -> p = (1&0)|(0&1) = 0,
    #:             n = (1&1)|(0&0) = 1
    #:   xor_swap: PA=1, NA=0, PB=0, NB=1 -> p = (PA&PB)|(NA&NB) = 0,
    #:             n = (PA&NB)|(NA&PB) = 1
    #:   mux:      SN=1, SP=0, PA=0, NA=1 -> p = (1&0)|(0&PB) = 0,
    #:             n = (1&1)|(0&NB) = 1
    #:   copy:     p = P(zero) = 0, n = N(zero) = 1
    _PAD_SLOTS = {
        "copy": [(P_PLANE, 0), (N_PLANE, 0)],
        "and": [(P_PLANE, 0), (N_PLANE, 0), (P_PLANE, 0), (N_PLANE, 0)],
        "and_swap": [(N_PLANE, 0), (P_PLANE, 0), (N_PLANE, 0), (P_PLANE, 0)],
        "xor": [(N_PLANE, 0), (P_PLANE, 0), (N_PLANE, 0), (P_PLANE, 0)],
        "xor_swap": [(N_PLANE, 0), (P_PLANE, 0), (P_PLANE, 0), (N_PLANE, 0)],
        "mux": [  # SN, SP, PA, PB, NA, NB
            (N_PLANE, 0), (P_PLANE, 0),
            (P_PLANE, 0), (P_PLANE, 0),
            (N_PLANE, 0), (N_PLANE, 0),
        ],
    }

    def _build_level_gather(self, plan: LevelPlan, by_cls: dict) -> None:
        slots: list[tuple[int, int]] = []
        for run in plan.runs:
            gates = by_cls[run.cls]
            arity_blocks = {"mux": 6, "copy": 2}.get(run.cls, 4)
            per_gate = [self._gate_eval_slots(i) for i in gates]
            pad = self._PAD_SLOTS[run.cls]
            offsets = []
            for block in range(arity_blocks):
                offsets.append(len(slots) // 64)
                for j in range(run.words * 64):
                    slots.append(
                        per_gate[j][block] if j < run.n_gates else pad[block]
                    )
            run.slot_words = tuple(offsets)

        # Activity blocks: for every output bit of the level (run layout
        # order), the A bit of its first and second input; muxes add a
        # third block for the select line.  Pads read A(zero) = 0.
        out_gates: list[int | None] = []
        for run in plan.runs:
            gates = by_cls[run.cls]
            out_gates.extend(gates)
            out_gates.extend([None] * (run.words * 64 - run.n_gates))
        mux_gates = by_cls.get("mux", [])

        def act_slot(index: int | None, input_pos: int) -> tuple[int, int]:
            if index is None:
                return (A_PLANE, 0)
            inputs = self.netlist.gates[index].inputs
            net = inputs[min(input_pos, len(inputs) - 1)]
            root, _parity = self.chain_of.get(net, (net, 0))
            return (A_PLANE, self.pos_of[root])

        plan.act0_word = len(slots) // 64
        slots.extend(act_slot(i, 0) for i in out_gates)
        plan.act1_word = len(slots) // 64
        slots.extend(act_slot(i, 1) for i in out_gates)
        if mux_gates:
            plan.act2_word = len(slots) // 64
            mux_padded = plan.mux_words * 64
            slots.extend(
                act_slot(mux_gates[j] if j < len(mux_gates) else None, 2)
                for j in range(mux_padded)
            )
        plan.gather_bytes, plan.gather_masks = self._slot_table(slots)
        plan.scratch_words = len(slots) // 64

    # ------------------------------------------------------------------
    # Pack / unpack between netlist order (uint8 trits) and bit planes
    # ------------------------------------------------------------------
    def pack_values(self, values: np.ndarray) -> np.ndarray:
        """uint8 trit rows -> (..., 2, n_words) P/N planes."""
        lead = values.shape[:-1]
        trits = np.zeros(lead + (self.n_bits,), dtype=np.uint8)
        trits[..., self.pos_of] = values
        p = np.packbits(trits != 0, axis=-1, bitorder="little")
        n = np.packbits(trits != 1, axis=-1, bitorder="little")
        planes = np.stack([p.view(np.uint64), n.view(np.uint64)], axis=-2)
        # pads (and the zero bit) must read as known 0: P=0, N=1
        pad_n = ~self.valid_mask
        planes[..., N_PLANE, :] |= pad_n
        planes[..., P_PLANE, :] &= self.valid_mask
        return planes

    def pack_active(self, active: np.ndarray) -> np.ndarray:
        """bool activity rows -> (..., n_words) A-plane words."""
        lead = active.shape[:-1]
        bits = np.zeros(lead + (self.n_bits,), dtype=np.uint8)
        bits[..., self.pos_of] = active
        return np.packbits(bits, axis=-1, bitorder="little").view(np.uint64)

    def unpack_trits(self, p_words: np.ndarray, n_words: np.ndarray) -> np.ndarray:
        """P/N word rows -> uint8 trit rows in netlist net order."""
        pu = np.unpackbits(
            np.ascontiguousarray(p_words).view(np.uint8),
            axis=-1, bitorder="little",
        )
        nu = np.unpackbits(
            np.ascontiguousarray(n_words).view(np.uint8),
            axis=-1, bitorder="little",
        )
        trits = pu + (pu & nu)  # (0,1)->0, (1,0)->1, (1,1)->2
        return np.take(trits, self.pos_of, axis=-1)

    def unpack_bits(self, words: np.ndarray) -> np.ndarray:
        """A-plane (or any mask) word rows -> bool rows in net order."""
        bits = np.unpackbits(
            np.ascontiguousarray(words).view(np.uint8),
            axis=-1, bitorder="little",
        )
        return np.take(bits, self.pos_of, axis=-1).astype(bool)
