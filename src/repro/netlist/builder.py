"""RTL-style construction of gate-level netlists.

The paper's flow synthesizes Verilog RTL to gates with Synopsys Design
Compiler.  Our stand-in is this builder: Python code describes registers,
adders, and muxes, and the builder elaborates them into 1- and 2-input
gates (plus 2:1 muxes and DFFs) in a :class:`~repro.netlist.core.Netlist`.

All buses are LSB-first lists of net ids.  A module context manager tags
gates with hierarchical paths so per-module power breakdowns work exactly
as in the paper's figures.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.netlist.core import Netlist, NetlistError

Bus = list[int]


class NetlistBuilder:
    """Imperative netlist construction with hierarchical module scoping."""

    def __init__(self, name: str = "design"):
        self.netlist = Netlist(name=name)
        self._module_stack: list[str] = []
        self._const0: int | None = None
        self._const1: int | None = None
        self._pending_dffs: set[int] = set()

    # ------------------------------------------------------------------
    # Hierarchy and finalization
    # ------------------------------------------------------------------
    @contextmanager
    def module(self, name: str) -> Iterator[None]:
        """Scope subsequent gates under ``parent/name``."""
        self._module_stack.append(name)
        try:
            yield
        finally:
            self._module_stack.pop()

    @property
    def current_module(self) -> str:
        return "/".join(self._module_stack)

    def finish(self) -> Netlist:
        """Validate and return the completed netlist."""
        if self._pending_dffs:
            names = [self.netlist.gates[i].name or str(i) for i in self._pending_dffs]
            raise NetlistError(f"DFFs never connected: {sorted(names)[:10]}")
        self.netlist.validate()
        self.netlist.levelize()  # raises on combinational cycles
        return self.netlist

    # ------------------------------------------------------------------
    # Primitive gates
    # ------------------------------------------------------------------
    def _gate(self, kind: str, inputs: tuple[int, ...], name: str = "") -> int:
        return self.netlist.add_gate(
            kind, inputs, module=self.current_module, name=name
        )

    def input(self, name: str) -> int:
        net = self._gate("INPUT", (), name=name)
        self.netlist.inputs[name] = net
        return net

    def bus_input(self, name: str, width: int) -> Bus:
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def output(self, name: str, net: int) -> None:
        self.netlist.outputs[name] = net

    def bus_output(self, name: str, bus: Bus) -> None:
        for i, net in enumerate(bus):
            self.output(f"{name}[{i}]", net)

    def const0(self) -> int:
        if self._const0 is None:
            self._const0 = self.netlist.add_gate("CONST0", (), name="tie0")
        return self._const0

    def const1(self) -> int:
        if self._const1 is None:
            self._const1 = self.netlist.add_gate("CONST1", (), name="tie1")
        return self._const1

    def not_(self, a: int, name: str = "") -> int:
        return self._gate("NOT", (a,), name)

    def buf(self, a: int, name: str = "") -> int:
        return self._gate("BUF", (a,), name)

    def and_(self, a: int, b: int, name: str = "") -> int:
        return self._gate("AND", (a, b), name)

    def or_(self, a: int, b: int, name: str = "") -> int:
        return self._gate("OR", (a, b), name)

    def nand(self, a: int, b: int, name: str = "") -> int:
        return self._gate("NAND", (a, b), name)

    def nor(self, a: int, b: int, name: str = "") -> int:
        return self._gate("NOR", (a, b), name)

    def xor(self, a: int, b: int, name: str = "") -> int:
        return self._gate("XOR", (a, b), name)

    def xnor(self, a: int, b: int, name: str = "") -> int:
        return self._gate("XNOR", (a, b), name)

    def mux(self, sel: int, a: int, b: int, name: str = "") -> int:
        """2:1 mux: *a* when sel=0, *b* when sel=1."""
        return self._gate("MUX", (sel, a, b), name)

    # ------------------------------------------------------------------
    # Flip-flops and registers
    # ------------------------------------------------------------------
    def dff(self, d: int, name: str = "", reset_value: int = 0) -> int:
        net = self.netlist.add_gate(
            "DFF", (d,), module=self.current_module, name=name,
            reset_value=reset_value,
        )
        return net

    def dff_forward(self, name: str = "", reset_value: int = 0) -> int:
        """Create a DFF whose D input will be wired later (self-loop now)."""
        net = len(self.netlist.gates)
        self.netlist.add_gate(
            "DFF", (net,), module=self.current_module, name=name,
            reset_value=reset_value,
        )
        self._pending_dffs.add(net)
        return net

    def connect_dff(self, dff_net: int, d: int) -> None:
        if self.netlist.gates[dff_net].kind != "DFF":
            raise NetlistError(f"net {dff_net} is not a DFF")
        self.netlist.gates[dff_net].inputs = (d,)
        self._pending_dffs.discard(dff_net)

    def register(
        self,
        width: int,
        name: str,
        reset_value: int = 0,
    ) -> Bus:
        """A bank of forward-declared DFFs; wire D inputs via connect_bus."""
        return [
            self.dff_forward(
                name=f"{name}[{i}]", reset_value=(reset_value >> i) & 1
            )
            for i in range(width)
        ]

    def connect_register(self, q_bus: Bus, d_bus: Bus) -> None:
        if len(q_bus) != len(d_bus):
            raise NetlistError("register width mismatch")
        for q, d in zip(q_bus, d_bus):
            self.connect_dff(q, d)

    def register_with_enable(
        self, q_bus: Bus, d_bus: Bus, enable: int
    ) -> None:
        """Wire a previously declared register as ``q <= en ? d : q``."""
        held = [self.mux(enable, q, d) for q, d in zip(q_bus, d_bus)]
        self.connect_register(q_bus, held)

    # ------------------------------------------------------------------
    # N-ary reductions
    # ------------------------------------------------------------------
    def _reduce(self, op, nets: Sequence[int]) -> int:
        nets = list(nets)
        if not nets:
            raise NetlistError("empty reduction")
        while len(nets) > 1:
            nxt = [
                op(nets[i], nets[i + 1]) for i in range(0, len(nets) - 1, 2)
            ]
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
        return nets[0]

    def and_n(self, nets: Sequence[int]) -> int:
        return self._reduce(self.and_, nets)

    def or_n(self, nets: Sequence[int]) -> int:
        return self._reduce(self.or_, nets)

    def xor_n(self, nets: Sequence[int]) -> int:
        return self._reduce(self.xor, nets)

    def nor_n(self, nets: Sequence[int]) -> int:
        return self.not_(self.or_n(nets))

    def nand_n(self, nets: Sequence[int]) -> int:
        return self.not_(self.and_n(nets))

    # ------------------------------------------------------------------
    # Bus logic
    # ------------------------------------------------------------------
    def bus_const(self, value: int, width: int) -> Bus:
        return [
            self.const1() if (value >> i) & 1 else self.const0()
            for i in range(width)
        ]

    def bus_not(self, a: Bus) -> Bus:
        return [self.not_(bit) for bit in a]

    def bus_and(self, a: Bus, b: Bus) -> Bus:
        return [self.and_(x, y) for x, y in zip(a, b, strict=True)]

    def bus_or(self, a: Bus, b: Bus) -> Bus:
        return [self.or_(x, y) for x, y in zip(a, b, strict=True)]

    def bus_xor(self, a: Bus, b: Bus) -> Bus:
        return [self.xor(x, y) for x, y in zip(a, b, strict=True)]

    def bus_mux(self, sel: int, a: Bus, b: Bus) -> Bus:
        """Per-bit 2:1 mux: *a* when sel=0, *b* when sel=1."""
        return [self.mux(sel, x, y) for x, y in zip(a, b, strict=True)]

    def bus_mux_tree(self, sel_bits: Bus, options: Sequence[Bus]) -> Bus:
        """2^n:1 bus mux. ``options[i]`` selected when sel equals i."""
        options = list(options)
        expected = 1 << len(sel_bits)
        if len(options) != expected:
            raise NetlistError(
                f"mux tree needs {expected} options, got {len(options)}"
            )
        current = options
        for sel in sel_bits:
            current = [
                self.bus_mux(sel, current[i], current[i + 1])
                for i in range(0, len(current), 2)
            ]
        return current[0]

    def bus_gate(self, enable: int, a: Bus) -> Bus:
        """AND every bit of *a* with *enable*."""
        return [self.and_(enable, bit) for bit in a]

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        axb = self.xor(a, b)
        s = self.xor(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, carry

    def ripple_add(self, a: Bus, b: Bus, cin: int | None = None) -> tuple[Bus, int]:
        """LSB-first ripple-carry adder; returns (sum bus, carry out)."""
        if len(a) != len(b):
            raise NetlistError("adder width mismatch")
        carry = cin if cin is not None else self.const0()
        out: Bus = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def ripple_sub(self, a: Bus, b: Bus) -> tuple[Bus, int]:
        """a - b via a + ~b + 1; carry-out is the MSP430-style ~borrow."""
        return self.ripple_add(a, self.bus_not(b), self.const1())

    def increment(self, a: Bus, amount: int = 1) -> Bus:
        out, _carry = self.ripple_add(a, self.bus_const(amount, len(a)))
        return out

    def eq_const(self, a: Bus, value: int) -> int:
        """One-hot comparator: out=1 iff bus equals the constant."""
        terms = [
            bit if (value >> i) & 1 else self.not_(bit)
            for i, bit in enumerate(a)
        ]
        return self.and_n(terms)

    def eq_bus(self, a: Bus, b: Bus) -> int:
        return self.and_n([self.xnor(x, y) for x, y in zip(a, b, strict=True)])

    def is_zero(self, a: Bus) -> int:
        return self.nor_n(a)

    def decoder(self, sel: Bus) -> list[int]:
        """Full decoder: 2^n one-hot outputs from an n-bit (LSB-first) select.

        Processing LSB first keeps the list in natural order: after bit k,
        entry *i* covers select value *i* over bits 0..k.
        """
        lines = [self.const1()]
        for bit in sel:
            nbit = self.not_(bit)
            lines = [self.and_(line, nbit) for line in lines] + [
                self.and_(line, bit) for line in lines
            ]
        return lines

    def shift_left_const(self, a: Bus, amount: int) -> Bus:
        """Logical shift left by a constant (pads with tie-0)."""
        zero = self.const0()
        return [zero] * amount + a[: len(a) - amount]

    def shift_right_const(self, a: Bus, amount: int, arithmetic: bool = False) -> Bus:
        fill = a[-1] if arithmetic else self.const0()
        return a[amount:] + [fill] * amount
