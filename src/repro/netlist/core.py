"""Core netlist data structures and levelization.

A netlist is a flat list of gates.  Every gate drives exactly one net and
the net id *is* the gate index, so fanout is implicit (any gate may list
any net id among its inputs).  Hierarchy is recorded as a slash-separated
module path on each gate — enough to reproduce the paper's per-module
power breakdowns (frontend, exec_unit, mem_backbone, multiplier, ...).

Gate kinds:

======== ======================================================
``INPUT``  primary input / externally forced net (memory dout, reset)
``CONST0`` tie-low          ``CONST1`` tie-high
``NOT`` ``BUF``             one-input combinational cells
``AND`` ``OR`` ``NAND`` ``NOR`` ``XOR`` ``XNOR`` two-input cells
``MUX``   2:1 mux, inputs ``(sel, a, b)``; output ``a`` when sel=0
``DFF``   D flip-flop, inputs ``(d,)``; state element
======== ======================================================
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


class NetlistError(Exception):
    """Raised for malformed netlists (bad arity, combinational loops...)."""


BINARY_KINDS = ("AND", "OR", "NAND", "NOR", "XOR", "XNOR")
COMB_KINDS = BINARY_KINDS + ("NOT", "BUF", "MUX")
SOURCE_KINDS = ("INPUT", "CONST0", "CONST1", "DFF")
ALL_KINDS = COMB_KINDS + SOURCE_KINDS

_ARITY = {
    "INPUT": 0,
    "CONST0": 0,
    "CONST1": 0,
    "NOT": 1,
    "BUF": 1,
    "DFF": 1,
    "MUX": 3,
}
for _kind in BINARY_KINDS:
    _ARITY[_kind] = 2


@dataclass
class Gate:
    """One gate instance; ``index`` doubles as the id of the net it drives."""

    index: int
    kind: str
    inputs: tuple[int, ...]
    module: str = ""
    name: str = ""
    #: For DFFs: the value loaded while the global reset net is asserted.
    reset_value: int = 0

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise NetlistError(f"unknown gate kind {self.kind!r}")
        expected = _ARITY[self.kind]
        if len(self.inputs) != expected:
            raise NetlistError(
                f"gate {self.name or self.index} of kind {self.kind} expects "
                f"{expected} inputs, got {len(self.inputs)}"
            )


@dataclass
class Netlist:
    """A flat gate-level design plus its named ports."""

    gates: list[Gate] = field(default_factory=list)
    #: name -> net id for externally forced nets (primary inputs).
    inputs: dict[str, int] = field(default_factory=dict)
    #: name -> net id for nets observed by the outside world.
    outputs: dict[str, int] = field(default_factory=dict)
    name: str = "design"

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def n_nets(self) -> int:
        return len(self.gates)

    def add_gate(
        self,
        kind: str,
        inputs: tuple[int, ...] = (),
        module: str = "",
        name: str = "",
        reset_value: int = 0,
    ) -> int:
        """Append a gate and return the id of the net it drives."""
        index = len(self.gates)
        self.gates.append(Gate(index, kind, inputs, module, name, reset_value))
        return index

    def dff_indices(self) -> list[int]:
        return [g.index for g in self.gates if g.kind == "DFF"]

    def comb_indices(self) -> list[int]:
        return [g.index for g in self.gates if g.kind in COMB_KINDS]

    def cell_gate_indices(self) -> list[int]:
        """Gates that correspond to physical cells (everything but sources)."""
        return [
            g.index for g in self.gates if g.kind in COMB_KINDS or g.kind == "DFF"
        ]

    def validate(self) -> None:
        """Check structural sanity: input references in range, no dangling."""
        n = len(self.gates)
        for gate in self.gates:
            for net in gate.inputs:
                if not 0 <= net < n:
                    raise NetlistError(
                        f"gate {gate.name or gate.index} references net {net} "
                        f"outside the netlist (size {n})"
                    )
        for name, net in list(self.inputs.items()) + list(self.outputs.items()):
            if not 0 <= net < n:
                raise NetlistError(f"port {name} references invalid net {net}")

    def levelize(self) -> list[list[int]]:
        """Topologically order combinational gates into evaluation levels.

        Sources (INPUT, CONST*, DFF outputs) are level -1 and not returned.
        Raises :class:`NetlistError` on a combinational cycle.
        """
        level = [-1] * len(self.gates)
        comb = self.comb_indices()
        dependents: dict[int, list[int]] = defaultdict(list)
        missing = {}
        for index in comb:
            gate = self.gates[index]
            comb_fanin = [
                net for net in gate.inputs if self.gates[net].kind in COMB_KINDS
            ]
            missing[index] = len(comb_fanin)
            for net in comb_fanin:
                dependents[net].append(index)

        ready = [index for index in comb if missing[index] == 0]
        for index in ready:
            level[index] = 0
        ordered_count = len(ready)
        frontier = ready
        while frontier:
            next_frontier = []
            for index in frontier:
                for dep in dependents[index]:
                    missing[dep] -= 1
                    if missing[dep] == 0:
                        gate = self.gates[dep]
                        level[dep] = 1 + max(
                            level[net]
                            for net in gate.inputs
                            if self.gates[net].kind in COMB_KINDS
                        )
                        next_frontier.append(dep)
                        ordered_count += 1
            frontier = next_frontier

        if ordered_count != len(comb):
            stuck = [i for i in comb if level[i] == -1][:10]
            names = [self.gates[i].name or str(i) for i in stuck]
            raise NetlistError(f"combinational cycle involving gates {names}")

        depth = max((level[i] for i in comb), default=-1)
        levels: list[list[int]] = [[] for _ in range(depth + 1)]
        for index in comb:
            levels[level[index]].append(index)
        return levels

    def module_of(self, net: int) -> str:
        return self.gates[net].module

    def top_modules(self) -> list[str]:
        """First-level module names, e.g. ``frontend``, ``exec_unit``."""
        tops = {
            gate.module.split("/", 1)[0]
            for gate in self.gates
            if gate.module
        }
        return sorted(tops)

    def gates_by_top_module(self) -> dict[str, list[int]]:
        """Cell gates grouped by their first-level module (sources excluded)."""
        groups: dict[str, list[int]] = defaultdict(list)
        for index in self.cell_gate_indices():
            gate = self.gates[index]
            top = gate.module.split("/", 1)[0] if gate.module else "misc"
            groups[top].append(index)
        return dict(groups)

    def stats(self) -> dict[str, int]:
        """Gate-kind histogram, the netlist's size card."""
        counts = Counter(gate.kind for gate in self.gates)
        counts["total"] = len(self.gates)
        counts["cells"] = len(self.cell_gate_indices())
        return dict(counts)
