"""Structural Verilog writer/parser for netlists.

The paper's toolflow hands a placed-and-routed ``.v`` netlist to the
analysis.  We support the same interchange: a netlist can be dumped to a
flat structural Verilog file (one cell instance per gate) and parsed back.
Module hierarchy and DFF reset values survive the round trip via structured
comments, so a design can be built once and shipped as ``.v``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.core import BINARY_KINDS, Gate, Netlist, NetlistError

_PIN_NAMES = {
    "NOT": ("A",),
    "BUF": ("A",),
    "DFF": ("D",),
    "MUX": ("S", "A", "B"),
}
for _kind in BINARY_KINDS:
    _PIN_NAMES[_kind] = ("A", "B")


def _net_name(index: int) -> str:
    return f"n{index}"


def write_verilog(netlist: Netlist, path: str | Path) -> None:
    """Write *netlist* as flat structural Verilog."""
    lines = [f"// structural netlist: {netlist.name}", f"module {netlist.name} ();"]
    if netlist.gates:
        lines.append(f"  wire {', '.join(_net_name(g.index) for g in netlist.gates)};")
    for name, net in sorted(netlist.inputs.items()):
        lines.append(f"  // input {name} -> {_net_name(net)}")
    for name, net in sorted(netlist.outputs.items()):
        lines.append(f"  // output {name} -> {_net_name(net)}")
    for gate in netlist.gates:
        attrs = f" /* m:{gate.module} r:{gate.reset_value} n:{gate.name} */"
        if gate.kind in ("INPUT", "CONST0", "CONST1"):
            lines.append(
                f"  {gate.kind} g{gate.index} (.Y({_net_name(gate.index)}));{attrs}"
            )
            continue
        pins = _PIN_NAMES[gate.kind]
        conns = [f".Y({_net_name(gate.index)})"] + [
            f".{pin}({_net_name(net)})" for pin, net in zip(pins, gate.inputs)
        ]
        lines.append(f"  {gate.kind} g{gate.index} ({', '.join(conns)});{attrs}")
    lines.append("endmodule")
    Path(path).write_text("\n".join(lines) + "\n")


_INSTANCE_RE = re.compile(
    r"^\s*(?P<kind>[A-Z01]+)\s+g(?P<index>\d+)\s*\((?P<conns>.*)\)\s*;"
    r"(?:\s*/\*\s*m:(?P<module>\S*)\s+r:(?P<reset>\d)\s+n:(?P<name>[^*]*?)\s*\*/)?"
)
_PIN_RE = re.compile(r"\.(?P<pin>[A-Z])\(n(?P<net>\d+)\)")
_PORT_RE = re.compile(r"^\s*//\s*(?P<dir>input|output)\s+(?P<name>\S+)\s*->\s*n(?P<net>\d+)")
_MODULE_RE = re.compile(r"^\s*module\s+(?P<name>\w+)")


def parse_verilog(path: str | Path) -> Netlist:
    """Parse a netlist previously produced by :func:`write_verilog`."""
    text = Path(path).read_text()
    name = "design"
    instances: dict[int, Gate] = {}
    inputs: dict[str, int] = {}
    outputs: dict[str, int] = {}
    for line in text.splitlines():
        module_match = _MODULE_RE.match(line)
        if module_match:
            name = module_match.group("name")
            continue
        port_match = _PORT_RE.match(line)
        if port_match:
            target = inputs if port_match.group("dir") == "input" else outputs
            target[port_match.group("name")] = int(port_match.group("net"))
            continue
        inst_match = _INSTANCE_RE.match(line)
        if not inst_match:
            continue
        kind = inst_match.group("kind")
        index = int(inst_match.group("index"))
        pins = dict(
            (m.group("pin"), int(m.group("net")))
            for m in _PIN_RE.finditer(inst_match.group("conns"))
        )
        if kind in ("INPUT", "CONST0", "CONST1"):
            gate_inputs: tuple[int, ...] = ()
        else:
            order = _PIN_NAMES[kind]
            try:
                gate_inputs = tuple(pins[p] for p in order)
            except KeyError as exc:
                raise NetlistError(f"instance g{index} missing pin {exc}") from None
        instances[index] = Gate(
            index=index,
            kind=kind,
            inputs=gate_inputs,
            module=inst_match.group("module") or "",
            name=(inst_match.group("name") or "").strip(),
            reset_value=int(inst_match.group("reset") or 0),
        )

    if not instances:
        raise NetlistError(f"no gate instances found in {path}")
    size = max(instances) + 1
    missing = [i for i in range(size) if i not in instances]
    if missing:
        raise NetlistError(f"netlist has holes at indices {missing[:10]}")
    netlist = Netlist(
        gates=[instances[i] for i in range(size)],
        inputs=inputs,
        outputs=outputs,
        name=name,
    )
    netlist.validate()
    return netlist
