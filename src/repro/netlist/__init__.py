"""Gate-level netlist representation, RTL builder, and structural Verilog I/O."""

from repro.netlist.core import (
    COMB_KINDS,
    SOURCE_KINDS,
    Gate,
    Netlist,
    NetlistError,
)
from repro.netlist.builder import NetlistBuilder
from repro.netlist.program import NetlistProgram
from repro.netlist.verilog import parse_verilog, write_verilog

__all__ = [
    "Gate",
    "Netlist",
    "NetlistError",
    "NetlistBuilder",
    "NetlistProgram",
    "COMB_KINDS",
    "SOURCE_KINDS",
    "parse_verilog",
    "write_verilog",
]
